"""E7: Figure 3 — tunable behaviour in the RUM space.

The paper's Figure 3 sketches the envisioned access method that can
"seamlessly transition between the three extremes".  We sweep the
knobs of :class:`TunableAccessMethod` over a grid, measure the RUM
profile at every setting, and render the swept *area* in the triangle.
Assertions verify the method genuinely moves:

* the read knob trades MO for RO,
* the write knob trades RO for UO,
* the swept placements cover a nontrivial area (not a single point),
* the dynamic tuner walks the structure toward the workload's corner.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import format_table
from repro.analysis.triangle import render_triangle
from repro.core.space import project_field
from repro.core.tuner import DynamicTuner, TunableAccessMethod, TunerPolicy
from repro.storage.device import SimulatedDevice
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.spec import WorkloadSpec

from benchmarks.harness import (
    BENCH_BLOCK,
    attach_tracer,
    emit_report,
    mark,
    measure_profiles,
)

SPEC = WorkloadSpec(
    point_queries=0.4,
    inserts=0.3,
    updates=0.2,
    deletes=0.1,
    operations=1500,
    initial_records=4000,
)

GRID = [0.0, 0.5, 1.0]


def _measure_grid() -> dict:
    # The knob grid as sweep cells over the registered "tunable" method:
    # independent cells, so REPRO_JOBS fans them over worker processes.
    entries = [
        (
            f"r={r:.1f},w={w:.1f}",
            "tunable",
            dict(read_optimization=r, write_optimization=w),
        )
        for r in GRID
        for w in GRID
    ]
    return measure_profiles(SPEC, entries)


@pytest.fixture(scope="module")
def grid_profiles():
    return _measure_grid()


@pytest.mark.benchmark(group="fig3")
def test_fig3_report(benchmark, grid_profiles):
    mark(benchmark)
    points = project_field(grid_profiles)
    art = render_triangle([points[name] for name in sorted(points)])
    rows = [
        [name, p.read_overhead, p.update_overhead, p.memory_overhead]
        for name, p in sorted(grid_profiles.items())
    ]
    table = format_table(
        ["knobs", "RO", "UO", "MO"],
        rows,
        title="Figure 3 (measured): the tunable method swept over its knob grid",
    )
    emit_report("fig3", table + "\n\n" + art)


class TestKnobMovement:
    def test_read_knob_trades_memory_for_reads(self, benchmark, grid_profiles):
        mark(benchmark)
        low = grid_profiles["r=0.0,w=0.5"]
        high = grid_profiles["r=1.0,w=0.5"]
        assert high.read_overhead < low.read_overhead
        assert high.memory_overhead > low.memory_overhead

    def test_write_knob_trades_reads_for_writes(self, benchmark, grid_profiles):
        mark(benchmark)
        low = grid_profiles["r=0.5,w=0.0"]
        high = grid_profiles["r=0.5,w=1.0"]
        assert high.update_overhead < low.update_overhead
        assert high.read_overhead > low.read_overhead

    def test_grid_covers_an_area(self, benchmark, grid_profiles):
        mark(benchmark)
        points = project_field(grid_profiles)
        xs = [p.x for p in points.values()]
        ys = [p.y for p in points.values()]
        assert max(xs) - min(xs) > 0.08
        assert max(ys) - min(ys) > 0.08

    def test_extremes_order_correctly(self, benchmark, grid_profiles):
        mark(benchmark)
        read_corner = grid_profiles["r=1.0,w=0.0"]
        write_corner = grid_profiles["r=0.0,w=1.0"]
        space_corner = grid_profiles["r=0.0,w=0.0"]
        assert read_corner.read_overhead < write_corner.read_overhead
        assert write_corner.update_overhead < read_corner.update_overhead
        assert space_corner.memory_overhead <= min(
            read_corner.memory_overhead, write_corner.memory_overhead
        ) + 1e-9


class TestDynamicBalance:
    """Section 5's "Dynamic RUM Balance": the knobs adapt online."""

    def test_tuner_chases_a_workload_shift(self, benchmark):
        mark(benchmark)
        method = TunableAccessMethod(
            attach_tracer(SimulatedDevice(block_bytes=BENCH_BLOCK)),
            read_optimization=0.5,
            write_optimization=0.5,
        )
        spec = WorkloadSpec(
            point_queries=1.0, operations=0, initial_records=3000
        )
        generator = WorkloadGenerator(spec)
        method.bulk_load(generator.initial_data())
        tuner = DynamicTuner(method, TunerPolicy(window=100, step=0.15))

        # Phase 1: read-only traffic — the read knob must rise.
        for i in range(400):
            method.get(2 * (i % 3000))
            tuner.observe_read()
        read_phase_r = method.read_optimization
        assert read_phase_r > 0.5

        # Phase 2: write-heavy traffic — the write knob must recover.
        for i in range(400):
            method.update(2 * (i % 3000), i)
            tuner.observe_write()
        assert method.write_optimization > 0.5
        assert method.read_optimization < read_phase_r

    def test_adaptation_improves_cost_on_stable_workload(self, benchmark):
        mark(benchmark)

        def run(adaptive: bool) -> float:
            method = TunableAccessMethod(
                attach_tracer(SimulatedDevice(block_bytes=BENCH_BLOCK)),
                read_optimization=0.1,
                write_optimization=0.9,
            )
            spec = WorkloadSpec(
                point_queries=1.0, operations=0, initial_records=3000
            )
            generator = WorkloadGenerator(spec)
            method.bulk_load(generator.initial_data())
            tuner = DynamicTuner(method, TunerPolicy(window=100, step=0.2))
            # Warm-up phase during which the tuner may adapt.
            for i in range(600):
                method.get(2 * ((7 * i) % 3000))
                if adaptive:
                    tuner.observe_read()
            # Measurement phase: pure reads.
            before = method.device.snapshot()
            for i in range(300):
                method.get(2 * ((11 * i) % 3000))
            return method.device.stats_since(before).read_bytes

        assert run(adaptive=True) < run(adaptive=False)
