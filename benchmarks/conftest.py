"""Benchmark-suite fixtures: opt-in structured I/O tracing.

Run any bench with event tracing to see the exact block stream behind
its report::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_fig1.py \
        --benchmark-only --io-trace events.jsonl

(The option is ``--io-trace`` because pytest reserves ``--trace`` for
pdb.)  Setting ``REPRO_TRACE=PATH`` in the environment does the same.
Every device built through :func:`benchmarks.harness.build_method` then
emits read/write/alloc/free/evict/write-back events into one shared
JSONL sink.
"""

from __future__ import annotations

import os

from benchmarks import harness


def pytest_addoption(parser):
    parser.addoption(
        "--io-trace",
        action="store",
        default=None,
        metavar="PATH",
        help="dump structured device I/O events (JSONL) from every bench",
    )


def pytest_configure(config):
    path = config.getoption("--io-trace") or os.environ.get("REPRO_TRACE")
    if path:
        harness.configure_tracing(path)


def pytest_unconfigure(config):
    harness.shutdown_engines()
    harness.close_tracing()
