"""E1-E3: the paper's Propositions 1-3 (Section 2), measured.

Prop 1  min(RO) = 1.0  =>  UO = 2.0 and MO unbounded   (MagicArray)
Prop 2  min(UO) = 1.0  =>  RO and MO grow unboundedly  (AppendOnlyLog)
Prop 3  min(MO) = 1.0  =>  RO = O(N) and UO = 1.0      (DenseArray)

These run on record-granularity devices (the paper's "blocks, each one
holding a value"), so the measured ratios are the paper's exact
constants, not block-inflated approximations.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.tables import format_table
from repro.methods.extremes import AppendOnlyLog, DenseArray, MagicArray
from repro.storage.layout import RECORD_BYTES

from benchmarks.harness import emit_report


def _prop1() -> dict:
    magic = MagicArray()
    rng = random.Random(41)
    values = rng.sample(range(5000), 400)
    for value in values:
        magic.insert(value)

    # RO: reads per point query, in records.
    before = magic.device.snapshot()
    probes = rng.sample(values, 100)
    for value in probes:
        assert magic.contains(value)
    read_records = magic.device.stats_since(before).read_bytes / RECORD_BYTES
    ro = read_records / len(probes)

    # UO: writes per logical value change, in records.
    before = magic.device.snapshot()
    changes = 0
    live = set(values)
    for value in list(live)[:100]:
        new_value = value + 5000
        magic.change(value, new_value)
        live.discard(value)
        live.add(new_value)
        changes += 1
    write_records = magic.device.stats_since(before).write_bytes / RECORD_BYTES
    uo = write_records / changes

    # MO grows with the domain regardless of the live count.
    mo = magic.memory_overhead()
    return {"ro": ro, "uo": uo, "mo": mo}


def _prop2() -> dict:
    log = AppendOnlyLog()
    log.bulk_load([(i, i) for i in range(100)])

    # UO: every logical update writes exactly one record.
    before = log.device.snapshot()
    operations = 0
    for i in range(100):
        log.update(50 + (i % 50), i)
        operations += 1
    uo = (log.device.stats_since(before).write_bytes / RECORD_BYTES) / operations

    # RO and MO measured at two points in time: both must grow.  The
    # probed keys (0..49) are never updated again, so their versions
    # sink deeper into the log as other keys churn.
    def read_cost() -> float:
        before = log.device.snapshot()
        for key in range(0, 50, 5):
            log.get(key)
        return log.device.stats_since(before).read_bytes / RECORD_BYTES / 10

    ro_early = read_cost()
    mo_early = log.space_bytes() / log.base_bytes()
    for i in range(400):
        log.update(50 + (i % 50), i)
    ro_late = read_cost()
    mo_late = log.space_bytes() / log.base_bytes()
    return {
        "uo": uo,
        "ro_early": ro_early,
        "ro_late": ro_late,
        "mo_early": mo_early,
        "mo_late": mo_late,
    }


def _prop3() -> dict:
    results = {}
    for n in (100, 400):
        dense = DenseArray()
        dense.bulk_load([(i, i) for i in range(n)])
        mo = dense.space_bytes() / dense.base_bytes()

        before = dense.device.snapshot()
        rng = random.Random(43)
        probes = [rng.randrange(n) for _ in range(30)]
        for key in probes:
            dense.get(key)
        ro = dense.device.stats_since(before).read_bytes / RECORD_BYTES / len(probes)

        before = dense.device.snapshot()
        for key in probes:
            dense.update(key, 0)
        uo = dense.device.stats_since(before).write_bytes / RECORD_BYTES / len(probes)
        results[n] = {"ro": ro, "uo": uo, "mo": mo}
    return results


@pytest.mark.benchmark(group="props")
def test_prop1_min_read_overhead(benchmark):
    result = benchmark.pedantic(_prop1, rounds=1, iterations=1)
    report = format_table(
        ["quantity", "paper", "measured"],
        [
            ["RO (point query)", 1.0, result["ro"]],
            ["UO (value change)", 2.0, result["uo"]],
            ["MO (sparse domain)", "unbounded", result["mo"]],
        ],
        title="Prop 1 - MagicArray (blkid = value): minimal read overhead",
    )
    emit_report("prop1", report)
    assert result["ro"] == pytest.approx(1.0)
    assert result["uo"] == pytest.approx(2.0)
    assert result["mo"] > 5.0  # domain 10000 over 400 live values


@pytest.mark.benchmark(group="props")
def test_prop2_min_update_overhead(benchmark):
    result = benchmark.pedantic(_prop2, rounds=1, iterations=1)
    report = format_table(
        ["quantity", "paper", "measured"],
        [
            ["UO (any update)", 1.0, result["uo"]],
            ["RO before more updates", "grows", result["ro_early"]],
            ["RO after 400 more updates", "", result["ro_late"]],
            ["MO before more updates", "grows", result["mo_early"]],
            ["MO after 400 more updates", "", result["mo_late"]],
        ],
        title="Prop 2 - AppendOnlyLog: minimal update overhead",
    )
    emit_report("prop2", report)
    assert result["uo"] == pytest.approx(1.0)
    assert result["ro_late"] > result["ro_early"]
    assert result["mo_late"] > result["mo_early"]


@pytest.mark.benchmark(group="props")
def test_prop3_min_memory_overhead(benchmark):
    results = benchmark.pedantic(_prop3, rounds=1, iterations=1)
    rows = []
    for n, r in results.items():
        rows.append([n, 1.0, r["mo"], "O(N)", r["ro"], 1.0, r["uo"]])
    report = format_table(
        ["N", "MO paper", "MO measured", "RO paper", "RO measured",
         "UO paper", "UO measured"],
        rows,
        title="Prop 3 - DenseArray: minimal memory overhead",
    )
    emit_report("prop3", report)
    for n, r in results.items():
        assert r["mo"] == pytest.approx(1.0)
        assert r["uo"] == pytest.approx(1.0)
    # RO scales linearly with N (expected scan length n/2).
    assert results[400]["ro"] == pytest.approx(4 * results[100]["ro"], rel=0.35)
