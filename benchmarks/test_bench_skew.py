"""E14: access skew and adaptive indexing (Section 4, adaptive middle).

Adaptive methods bet on skew: they invest reorganization only where
queries actually land.  We compare cracking against the B+-Tree under
uniform and strongly skewed (hot-range) query workloads:

* under skew, cracking converges fast and closes most of the gap to the
  fully-indexed tree without ever paying a full index build;
* under uniform access, cracking keeps paying reorganization everywhere
  and stays further from the tree — the skew-dependence that makes
  adaptive methods *areas*, not points, in the RUM space.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.tables import format_table

from benchmarks.harness import emit_report, loaded_method, mark

N = 8192
QUERIES = 150
SPAN = 48


def _queries(skewed: bool):
    rng = random.Random(97)
    queries = []
    for _ in range(QUERIES):
        if skewed:
            start = rng.randrange(N // 8 - SPAN)  # hot eighth of the keys
        else:
            start = rng.randrange(N - SPAN)
        queries.append((2 * start, 2 * (start + SPAN - 1)))
    return queries


def _run(name: str, skewed: bool) -> dict:
    method = loaded_method(name, N, churn=False)
    queries = _queries(skewed)
    warmup, measured = queries[:100], queries[100:]
    for lo, hi in warmup:
        method.range_query(lo, hi)
    before = method.device.snapshot()
    for lo, hi in measured:
        method.range_query(lo, hi)
    io = method.device.stats_since(before)
    return {
        "reads_per_query": io.reads / len(measured),
        "total_writes": method.device.counters.writes,
    }


@pytest.fixture(scope="module")
def results():
    data = {}
    for name in ("cracking", "btree"):
        for skewed in (False, True):
            data[(name, skewed)] = _run(name, skewed)
    return data


@pytest.mark.benchmark(group="skew")
def test_skew_report(benchmark, results):
    mark(benchmark)
    rows = []
    for (name, skewed), result in sorted(results.items()):
        rows.append(
            [
                name,
                "skewed" if skewed else "uniform",
                result["reads_per_query"],
                result["total_writes"],
            ]
        )
    report = format_table(
        ["method", "access pattern", "reads/query (post-warmup)",
         "total writes"],
        rows,
        title="E14: adaptive indexing pays off under skew",
    )
    emit_report("skew", report)


class TestSkewSensitivity:
    def test_cracking_much_better_under_skew(self, benchmark, results):
        mark(benchmark)
        skewed = results[("cracking", True)]["reads_per_query"]
        uniform = results[("cracking", False)]["reads_per_query"]
        assert skewed < uniform / 2

    def test_btree_indifferent_to_skew(self, benchmark, results):
        mark(benchmark)
        skewed = results[("btree", True)]["reads_per_query"]
        uniform = results[("btree", False)]["reads_per_query"]
        assert 0.5 <= skewed / uniform <= 2.0

    def test_cracking_approaches_tree_under_skew(self, benchmark, results):
        mark(benchmark)
        cracking = results[("cracking", True)]["reads_per_query"]
        btree = results[("btree", True)]["reads_per_query"]
        # Warmed-up cracking on its hot range reads within 4x of the
        # fully-indexed tree — without ever paying a full index build.
        assert cracking < 4 * btree

    def test_skew_reduces_cracking_reorganization(self, benchmark, results):
        mark(benchmark)
        # Focused queries crack less of the array: total write volume is
        # lower under skew than under uniform access.
        assert (
            results[("cracking", True)]["total_writes"]
            < results[("cracking", False)]["total_writes"]
        )

    def test_cracking_needs_no_upfront_build(self, benchmark):
        mark(benchmark)
        # The adaptive sell: the B+-Tree pays its whole sort-and-build
        # before answering anything; cracking answers its first query
        # immediately, for a fraction of that I/O.
        from benchmarks.harness import bulk_creation_cost, build_method

        build_io = bulk_creation_cost("btree", N)
        method = build_method("cracking")
        records = [(2 * i, 20 * i + 1) for i in range(N)]
        random.Random(17).shuffle(records)
        method.bulk_load(records)
        before = method.device.snapshot()
        method.range_query(100, 196)  # first query, cold structure
        first_query = method.device.stats_since(before)
        # The first crack costs roughly two partitioning passes over the
        # array — meaningfully below the external sort + build, though
        # the same order of magnitude (as the cracking papers report).
        assert first_query.reads + first_query.writes < 0.8 * build_io
