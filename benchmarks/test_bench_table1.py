"""E4: Table 1 — measured I/O cost of the six data organizations.

The paper's Table 1 gives asymptotic I/O costs for B+-Tree, Perfect
Hash Index, ZoneMaps, Levelled LSM, Sorted column and Unsorted column
across five operations.  This bench measures actual block I/Os on the
simulated device over an N sweep and checks the paper's claims:

* shape of each curve (flat / logarithmic / linear),
* the stated winners: ZoneMaps smallest index, Hash fastest point
  queries and updates, B+-Trees fastest range queries, sorted column
  log-search with linear updates, unsorted column O(1) updates with
  scan reads.

Absolute constants are ours (simulator, 16-record blocks); shapes and
orderings are the reproduction target.
"""

from __future__ import annotations

import pytest

from repro.analysis.complexity import TABLE1_MODELS, Table1Params
from repro.analysis.fitting import growth_ratio, is_flat
from repro.analysis.tables import format_table

from repro.exec import SweepCell
from repro.workloads.spec import WorkloadSpec

from benchmarks.harness import (
    mark,
    BENCH_BLOCK,
    BENCH_KWARGS,
    RECORDS_PER_BLOCK,
    emit_report,
    loaded_method,
    range_query_cost,
    run_cells,
)

METHODS = ["btree", "hash-index", "zonemap", "lsm", "sorted-column", "unsorted-column"]
NS = [1024, 4096, 16384]
RANGE_RESULT = 128  # the paper's m

#: The Table-1 runner probes operations directly (no workload stream);
#: the spec slot of each cell is this fixed placeholder.
_PROBE_SPEC = WorkloadSpec(point_queries=1.0, operations=0, initial_records=0)


def _measure_all() -> dict:
    """measured[method][operation] = [cost at each N]

    One sweep cell per (method, N), dispatched to the custom
    ``run_table1_cell`` runner — every cell is independent, so the
    whole table parallelizes under REPRO_JOBS and caches under
    REPRO_BENCH_CACHE.
    """
    cells = [
        SweepCell.make(
            name,
            _PROBE_SPEC,
            label=f"{name}@N={n}",
            block_bytes=BENCH_BLOCK,
            # Baked in for cache identity (the runner re-merges them).
            overrides=BENCH_KWARGS.get(name, {}),
            params=dict(n=n, range_result=RANGE_RESULT),
            runner="benchmarks.harness:run_table1_cell",
        )
        for n in NS
        for name in METHODS
    ]
    outcome = run_cells(cells)
    measured = {name: {op: [] for op in
                       ("bulk_creation", "index_size", "point_query",
                        "range_query", "insert")} for name in METHODS}
    for cell, row in zip(outcome.cells, outcome.results):
        for op, cost in row.items():
            measured[cell.method][op].append(cost)
    return measured


@pytest.fixture(scope="module")
def measured():
    return _measure_all()


@pytest.mark.benchmark(group="table1")
def test_table1_report(benchmark, measured):
    """Regenerate Table 1 as measured numbers and archive the report."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for name in METHODS:
        for i, n in enumerate(NS):
            rows.append(
                [
                    name,
                    n,
                    measured[name]["bulk_creation"][i],
                    measured[name]["index_size"][i],
                    measured[name]["point_query"][i],
                    measured[name]["range_query"][i],
                    measured[name]["insert"][i],
                ]
            )
    report = format_table(
        ["method", "N", "bulk creation (I/Os)", "aux size (bytes)",
         "point query (reads)", f"range m={RANGE_RESULT} (reads)",
         "insert (I/Os)"],
        rows,
        title="Table 1 (measured): I/O cost of six data organizations",
    )
    emit_report("table1", report)


class TestPointQueryShapes:
    def test_hash_point_query_flat(self, benchmark, measured):
        mark(benchmark)
        assert is_flat(NS, measured["hash-index"]["point_query"], tolerance=1.6)

    def test_hash_point_query_is_fastest(self, benchmark, measured):
        mark(benchmark)
        at_largest = {name: measured[name]["point_query"][-1] for name in METHODS}
        assert min(at_largest, key=at_largest.get) == "hash-index"

    def test_btree_point_query_sublinear(self, benchmark, measured):
        mark(benchmark)
        ratio = growth_ratio(NS, measured["btree"]["point_query"])
        assert ratio < 4.0  # logarithmic-ish; linear would be 16x

    def test_unsorted_point_query_linear(self, benchmark, measured):
        mark(benchmark)
        ratio = growth_ratio(NS, measured["unsorted-column"]["point_query"])
        assert ratio > 8.0

    def test_sorted_point_query_logarithmic(self, benchmark, measured):
        mark(benchmark)
        ratio = growth_ratio(NS, measured["sorted-column"]["point_query"])
        assert ratio < 4.0

    def test_zonemap_point_query_grows_with_synopsis(self, benchmark, measured):
        mark(benchmark)
        # O(N/P/B): linear but with a very small constant; growth must be
        # visible yet costs far below a full scan.
        zonemap = measured["zonemap"]["point_query"]
        unsorted = measured["unsorted-column"]["point_query"]
        assert zonemap[-1] > zonemap[0]
        assert zonemap[-1] < unsorted[-1] / 4


class TestRangeQueryShapes:
    def test_btree_wins_ranges_among_indexes(self, benchmark, measured):
        mark(benchmark)
        at_largest = {
            name: measured[name]["range_query"][-1]
            for name in ("btree", "hash-index", "zonemap", "lsm")
        }
        assert min(at_largest, key=at_largest.get) == "btree"

    def test_hash_range_is_linear_scan(self, benchmark, measured):
        mark(benchmark)
        ratio = growth_ratio(NS, measured["hash-index"]["range_query"])
        assert ratio > 8.0

    def test_btree_range_nearly_flat_for_fixed_m(self, benchmark, measured):
        mark(benchmark)
        # log_B(N) + m/B: the m/B term dominates, so growth is mild.
        ratio = growth_ratio(NS, measured["btree"]["range_query"])
        assert ratio < 2.5


class TestUpdateShapes:
    def test_hash_insert_flat_and_cheapest_inplace(self, benchmark, measured):
        mark(benchmark)
        assert is_flat(NS, measured["hash-index"]["insert"], tolerance=2.0)
        at_largest = {
            name: measured[name]["insert"][-1]
            for name in ("btree", "hash-index", "zonemap")
        }
        assert min(at_largest, key=at_largest.get) == "hash-index"

    def test_sorted_insert_linear(self, benchmark, measured):
        mark(benchmark)
        ratio = growth_ratio(NS, measured["sorted-column"]["insert"])
        assert ratio > 8.0

    def test_unsorted_insert_constant(self, benchmark, measured):
        mark(benchmark)
        assert is_flat(NS, measured["unsorted-column"]["insert"], tolerance=2.0)

    def test_lsm_insert_far_cheaper_than_sorted(self, benchmark, measured):
        mark(benchmark)
        assert (
            measured["lsm"]["insert"][-1]
            < measured["sorted-column"]["insert"][-1] / 10
        )

    def test_btree_insert_sublinear(self, benchmark, measured):
        mark(benchmark)
        ratio = growth_ratio(NS, measured["btree"]["insert"])
        assert ratio < 4.0


class TestIndexSizes:
    def test_zonemap_smallest_index(self, benchmark, measured):
        mark(benchmark)
        at_largest = {
            name: measured[name]["index_size"][-1]
            for name in ("btree", "hash-index", "zonemap", "lsm")
        }
        assert min(at_largest, key=at_largest.get) == "zonemap"

    def test_columns_have_negligible_aux(self, benchmark, measured):
        mark(benchmark)
        for name in ("sorted-column", "unsorted-column"):
            # Aux is only block slack: under 2 blocks' worth at any N.
            assert measured[name]["index_size"][-1] <= 2 * 256


class TestBulkCreation:
    def test_sorted_structures_pay_sort_cost(self, benchmark, measured):
        mark(benchmark)
        # B+-Tree and sorted column must write more than 2x the data
        # (run generation + merge passes); unsorted column writes ~1x.
        for name in ("btree", "sorted-column"):
            data_blocks = NS[-1] / RECORDS_PER_BLOCK
            assert measured[name]["bulk_creation"][-1] > 2 * data_blocks
        assert (
            measured["unsorted-column"]["bulk_creation"][-1]
            < 1.5 * NS[-1] / RECORDS_PER_BLOCK
        )


def _m_sweep() -> dict:
    """Range cost vs result size m at fixed N — Table 1's m parameter."""
    n = 8192
    sweep = {}
    for name in ("btree", "sorted-column", "zonemap"):
        method = loaded_method(name, n)
        sweep[name] = [
            (m, range_query_cost(method, n, m, probes=10))
            for m in (16, 64, 256, 1024)
        ]
    return sweep


@pytest.fixture(scope="module")
def m_sweep():
    return _m_sweep()


class TestRangeResultSizeParameter:
    """Table 1's range costs carry an additive m/B term: for ordered
    structures the cost grows linearly in m once m/B dominates the
    search term."""

    def test_report(self, benchmark, m_sweep):
        mark(benchmark)
        rows = []
        for name, series in sorted(m_sweep.items()):
            for m, cost in series:
                rows.append([name, m, cost])
        emit_report(
            "table1_m_sweep",
            format_table(
                ["method", "m (result size)", "reads/query"],
                rows,
                title="Table 1, the m parameter: range cost vs result size",
            ),
        )

    @pytest.mark.parametrize("name", ["btree", "sorted-column", "zonemap"])
    def test_range_cost_grows_with_m(self, benchmark, m_sweep, name):
        mark(benchmark)
        costs = [cost for _, cost in m_sweep[name]]
        assert costs[-1] > costs[0]

    def test_btree_large_m_scales_linearly(self, benchmark, m_sweep):
        mark(benchmark)
        by_m = dict(m_sweep["btree"])
        # Quadrupling m from 256 to 1024 roughly quadruples the m/B term.
        assert 2.0 <= by_m[1024] / by_m[256] <= 6.0


class TestAgainstAnalyticModels:
    """Measured growth must agree with the closed-form Table 1 models."""

    @pytest.mark.parametrize("name", METHODS)
    def test_point_query_growth_within_model_band(self, benchmark, measured, name):
        mark(benchmark)
        model = TABLE1_MODELS[name]
        model_ratio = model.point_query(
            Table1Params(N=NS[-1], B=RECORDS_PER_BLOCK)
        ) / model.point_query(Table1Params(N=NS[0], B=RECORDS_PER_BLOCK))
        measured_ratio = growth_ratio(NS, measured[name]["point_query"])
        # Within a 4x band of the model's predicted growth (or both flat).
        assert measured_ratio <= 4 * max(model_ratio, 1.0)
