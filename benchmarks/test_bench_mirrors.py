"""E18: fractured mirrors — buying reads with updates and space.

Section 1's multi-layout example, measured: the mirrored store must
(a) match the hash index on point reads AND the B+-Tree on range reads
— better than either single layout across a mixed read workload —
while (b) paying roughly double on updates and (c) roughly double on
space.  The purest "optimize one, pay the other two" in the library.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.tables import format_table
from repro.core.registry import create_method
from repro.storage.device import SimulatedDevice

from benchmarks.harness import BENCH_BLOCK, attach_tracer, emit_report, mark

N = 6000


def _measure() -> dict:
    results = {}
    for name in ("hash-index", "btree", "fractured-mirrors"):
        method = create_method(name, device=attach_tracer(SimulatedDevice(block_bytes=BENCH_BLOCK)))
        method.bulk_load([(2 * i, i) for i in range(N)])
        rng = random.Random(43)
        device = method.device

        before = device.snapshot()
        for _ in range(60):
            method.get(2 * rng.randrange(N))
        point_reads = device.stats_since(before).reads / 60

        before = device.snapshot()
        for _ in range(15):
            start = rng.randrange(N - 128)
            method.range_query(2 * start, 2 * (start + 127))
        range_reads = device.stats_since(before).reads / 15

        before = device.snapshot()
        for offset in rng.sample(range(N), 60):
            method.insert(2 * offset + 1, offset)
        io = device.stats_since(before)
        insert_cost = (io.reads + io.writes) / 60

        space = method.space_bytes() / method.base_bytes()
        results[name] = dict(
            point=point_reads, range=range_reads, insert=insert_cost, space=space
        )
    return results


@pytest.fixture(scope="module")
def mirrors():
    return _measure()


@pytest.mark.benchmark(group="mirrors")
def test_mirrors_report(benchmark, mirrors):
    mark(benchmark)
    rows = [
        [name, m["point"], m["range"], m["insert"], m["space"]]
        for name, m in mirrors.items()
    ]
    report = format_table(
        ["layout", "point reads/op", "range reads/op", "insert I/Os/op", "MO"],
        rows,
        title="E18: fractured mirrors - reads of the best layout, costs of both",
    )
    emit_report("mirrors", report)


class TestMultiLayoutTrade:
    def test_reads_match_the_best_single_layout(self, benchmark, mirrors):
        mark(benchmark)
        assert mirrors["fractured-mirrors"]["point"] <= mirrors["hash-index"]["point"] * 1.05
        assert mirrors["fractured-mirrors"]["range"] <= mirrors["btree"]["range"] * 1.05
        # ... and beats each mirror on the *other* mirror's weakness.
        assert mirrors["fractured-mirrors"]["point"] < mirrors["btree"]["point"]
        assert mirrors["fractured-mirrors"]["range"] < mirrors["hash-index"]["range"] / 10

    def test_updates_cost_roughly_both(self, benchmark, mirrors):
        mark(benchmark)
        combined = mirrors["hash-index"]["insert"] + mirrors["btree"]["insert"]
        mirrored = mirrors["fractured-mirrors"]["insert"]
        assert mirrored > max(
            mirrors["hash-index"]["insert"], mirrors["btree"]["insert"]
        )
        assert 0.7 * combined <= mirrored <= 1.3 * combined

    def test_space_costs_roughly_both(self, benchmark, mirrors):
        mark(benchmark)
        combined = mirrors["hash-index"]["space"] + mirrors["btree"]["space"]
        mirrored = mirrors["fractured-mirrors"]["space"]
        assert 0.8 * combined <= mirrored <= 1.2 * combined
        assert mirrored >= 2.0  # at least two full copies of the base data
