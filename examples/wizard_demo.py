"""The access-method wizard: pick a structure for a workload + hardware.

Run with::

    python examples/wizard_demo.py

Section 5 of the paper envisions "a powerful access method wizard" that
chooses structures from application requirements and hardware
characteristics.  This demo asks the wizard for recommendations on
three scenarios and shows how both the workload mix *and* the hardware
priorities (flash endurance, scarce memory) change the answer.
"""

from __future__ import annotations

from repro import WorkloadSpec
from repro.analysis.tables import format_table
from repro.core.wizard import HardwarePriorities, recommend

SCENARIOS = [
    (
        "Analytics dashboard (read-mostly, range-heavy) on disk",
        WorkloadSpec(
            point_queries=0.4,
            range_queries=0.4,
            inserts=0.1,
            updates=0.1,
            operations=800,
            initial_records=4000,
        ),
        HardwarePriorities.disk(),
    ),
    (
        "Ingest pipeline (write-heavy) on flash",
        WorkloadSpec(
            point_queries=0.1,
            inserts=0.6,
            updates=0.25,
            deletes=0.05,
            operations=800,
            initial_records=4000,
        ),
        HardwarePriorities.flash(),
    ),
    (
        "Edge device (balanced) with scarce memory",
        WorkloadSpec(
            point_queries=0.4,
            range_queries=0.1,
            inserts=0.25,
            updates=0.15,
            deletes=0.1,
            operations=800,
            initial_records=4000,
        ),
        HardwarePriorities.memory_constrained(),
    ),
]


def main() -> None:
    for title, spec, priorities in SCENARIOS:
        print("=" * 72)
        print(title)
        print("=" * 72)
        recommendations = recommend(spec, priorities)
        rows = [
            [
                index + 1,
                rec.method,
                rec.score,
                rec.profile.read_overhead,
                rec.profile.update_overhead,
                rec.profile.memory_overhead,
            ]
            for index, rec in enumerate(recommendations[:5])
        ]
        print(format_table(["rank", "method", "score", "RO", "UO", "MO"], rows))
        best = recommendations[0]
        print(f"\n  -> wizard picks {best.method!r}: {best.rationale}\n")


if __name__ == "__main__":
    main()
