"""Bitmap analytics: compression and update-friendliness on a fact table.

Run with::

    python examples/bitmap_analytics.py

A miniature warehouse scenario: a fact table of orders with a
low-cardinality ``status`` attribute (8 values), indexed by bitmaps.
We compare plain vs WAH-compressed bitmaps (the paper's Section-1
computation-for-space example) and plain vs update-friendly maintenance
(the Section-5 "updates absorbed in additional, highly compressible
bitvectors" design) on the same query/update mix.
"""

from __future__ import annotations

import random

from repro.analysis.tables import format_table
from repro.methods.bitmap import BitmapIndex
from repro.storage.device import SimulatedDevice

ORDERS = 4000
STATUSES = 8  # placed, paid, packed, shipped, ... : low cardinality


def build(compressed: bool, update_friendly: bool) -> BitmapIndex:
    index = BitmapIndex(
        SimulatedDevice(),
        compressed=compressed,
        update_friendly=update_friendly,
        delta_merge_bits=128,
    )
    # Orders arrive roughly in status order (old orders shipped, recent
    # ones placed): clustered bitmaps, the WAH-friendly layout.
    rows = [(order_id, (order_id * STATUSES) // ORDERS) for order_id in range(ORDERS)]
    index.bulk_load(rows)
    return index


def exercise(index: BitmapIndex) -> dict:
    rng = random.Random(3)
    device = index.device

    before = device.snapshot()
    for status in range(STATUSES):
        index.lookup_value(status)
    lookup_reads = device.stats_since(before).reads

    before = device.snapshot()
    for _ in range(200):
        order_id = rng.randrange(ORDERS)
        if index.get(order_id) is not None:
            index.update(order_id, rng.randrange(STATUSES))
    update_writes = device.stats_since(before).writes

    return {
        "bitmap_bytes": index.bitmap_bytes(),
        "lookup_reads": lookup_reads,
        "update_writes": update_writes,
    }


def main() -> None:
    configurations = [
        ("plain bitmaps", False, False),
        ("WAH compressed", True, False),
        ("WAH + update-friendly deltas", True, True),
    ]
    rows = []
    for label, compressed, update_friendly in configurations:
        index = build(compressed, update_friendly)
        result = exercise(index)
        rows.append(
            [
                label,
                result["bitmap_bytes"],
                result["lookup_reads"],
                result["update_writes"],
            ]
        )
    print(format_table(
        ["configuration", "bitmap bytes", "status-scan reads", "update writes"],
        rows,
        title=f"Bitmap index over {ORDERS} orders x {STATUSES} statuses",
    ))
    print()
    print("WAH shrinks clustered bitmaps by orders of magnitude (space for")
    print("computation); delta bitvectors absorb updates that would")
    print("otherwise rewrite compressed bitmaps (the paper's Section-5")
    print("update-friendly design).")


if __name__ == "__main__":
    main()
