"""Section-5 designs live: the indexed log and the morphing method.

Run with::

    python examples/log_structured_showcase.py

Two of the paper's envisioned RUM-aware designs side by side:

1. **Indexed log** — "iterative logs enhanced by probabilistic data
   structures": compare the plain Prop-2 append log, the indexed log
   without filters, and the indexed log with Bloom filters on the same
   update-then-read workload.  Watch reads collapse while the update
   cost stays at the append floor.
2. **Morphing method** — "combining multiple shapes at once": feed a
   three-phase workload (ingest, analyze, ingest) and watch the
   structure change shape, printing its morph history.
"""

from __future__ import annotations

import random

from repro.analysis.tables import format_table
from repro.methods.extremes import AppendOnlyLog
from repro.methods.indexed_log import IndexedLog
from repro.methods.morphing import MorphingMethod
from repro.storage.device import SimulatedDevice
from repro.storage.layout import RECORD_BYTES

N = 2000


def indexed_log_comparison() -> None:
    print("=" * 72)
    print("1. Iterative logs + probabilistic structures (Section 5)")
    print("=" * 72)
    # 256-byte blocks: segments of 256 records span 16 blocks, so a
    # filter probe (1 block) genuinely replaces a binary search.
    variants = [
        ("no filters, no compaction",
         dict(bloom_bits_per_key=0, compact_segments=None)),
        ("+ Bloom filters",
         dict(bloom_bits_per_key=10, compact_segments=None)),
        ("+ filters + iterative compaction",
         dict(bloom_bits_per_key=10, compact_segments=6)),
    ]
    rows = []
    for label, options in variants:
        rng = random.Random(21)
        log = IndexedLog(
            SimulatedDevice(block_bytes=256), segment_records=256, **options
        )
        log.bulk_load([(2 * i, i) for i in range(N)])
        # Update churn (random keys: segments overlap), then reads.
        before = log.device.snapshot()
        for i in range(2000):
            log.update(2 * rng.randrange(N), i)
        log.flush()
        update_io = log.device.stats_since(before)
        before = log.device.snapshot()
        for _ in range(200):
            log.get(2 * rng.randrange(N))
        read_io = log.device.stats_since(before)
        rows.append(
            [
                label,
                update_io.write_bytes / (2000 * RECORD_BYTES),
                read_io.reads / 200,
                log.space_bytes() / log.base_bytes(),
                log.segments,
            ]
        )
    print(format_table(
        ["variant", "UO (write amp)", "reads per get", "MO (space amp)",
         "segments"],
        rows,
    ))
    print()
    print("Filters skip segments for one block read apiece; compaction")
    print("bounds the segment count - reads improve at each step while")
    print("updates stay within a small factor of the append floor.\n")


def morphing_showcase() -> None:
    print("=" * 72)
    print("2. A morphing access method (Section 5)")
    print("=" * 72)
    method = MorphingMethod(SimulatedDevice(), initial_shape="log", window=150)
    method.bulk_load([(2 * i, i) for i in range(N)])
    rng = random.Random(31)
    next_key = 2 * N + 1

    phases = [("ingest", 0.9), ("analyze", 0.05), ("ingest again", 0.9)]
    rows = []
    for label, write_fraction in phases:
        before = method.device.snapshot()
        for _ in range(450):
            if rng.random() < write_fraction:
                method.insert(next_key, next_key)
                next_key += 2
            else:
                method.get(2 * rng.randrange(N))
        io = method.device.stats_since(before)
        rows.append([label, method.shape, io.reads, io.writes])
    print(format_table(
        ["phase", "shape afterwards", "block reads", "block writes"], rows
    ))
    print()
    print(f"Morph history: {' -> '.join(method.morph_history)}")
    print("The structure adds organization when reads demand it and sheds")
    print("it again when ingest resumes - 'adding structure to data")
    print("gradually', as the paper envisions.")


def main() -> None:
    indexed_log_comparison()
    morphing_showcase()


if __name__ == "__main__":
    main()
