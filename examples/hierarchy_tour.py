"""Memory-hierarchy tour: the vertical RUM tradeoff of Figure 2.

Run with::

    python examples/hierarchy_tour.py

The paper's Figure 2 observes that the read/update overheads at level n
can be bought down by replicating more data at the faster level n-1 —
raising that level's memory overhead.  This demo stacks a DRAM cache
over a flash device holding a skewed-access dataset and sweeps the
cache size, printing the measured three-way interaction and the
simulated time saved.
"""

from __future__ import annotations

import random

from repro.analysis.tables import format_table
from repro.storage.device import CostModel, SimulatedDevice
from repro.storage.hierarchy import LevelSpec, MemoryHierarchy

N_BLOCKS = 512
ACCESSES = 8000


def main() -> None:
    rng = random.Random(13)
    # Zipf-ish block popularity: a hot head and a long cold tail.
    pattern = [
        min(int(rng.expovariate(1.0 / 40)), N_BLOCKS - 1) for _ in range(ACCESSES)
    ]

    rows = []
    for capacity in (0, 32, 64, 128, 256, 512):
        flash = SimulatedDevice(cost_model=CostModel.flash(), name="flash")
        blocks = [flash.allocate() for _ in range(N_BLOCKS)]
        for index, block in enumerate(blocks):
            flash.write(block, f"page-{index}")
        flash.reset_counters()

        hierarchy = MemoryHierarchy(flash, [LevelSpec("dram", capacity)])
        for index in pattern:
            if rng.random() < 0.2:
                hierarchy.write(blocks[index], f"updated-{index}")
            else:
                hierarchy.read(blocks[index])
        hierarchy.flush()

        dram = hierarchy.levels[0]
        rows.append(
            [
                capacity,
                f"{dram.hit_rate():.1%}",
                flash.counters.reads,
                flash.counters.writes,
                dram.space_bytes // 1024,
                f"{flash.counters.simulated_time:,.0f}",
            ]
        )

    print(format_table(
        ["DRAM capacity (blocks)", "hit rate", "flash reads (RO_n)",
         "flash writes (UO_n)", "DRAM KiB (MO_n-1)", "flash time"],
        rows,
        title="Figure 2, live: buying level-n traffic with level-(n-1) space",
    ))
    print()
    print("Every extra DRAM block cuts the traffic that reaches flash -")
    print("the vertical RUM trade: RO_n and UO_n fall as MO_(n-1) rises.")


if __name__ == "__main__":
    main()
