"""Dynamic RUM balance: an access method that follows a workload shift.

Run with::

    python examples/adaptive_shift.py

Section 5 of the paper envisions "access methods that can automatically
and dynamically adapt to new workload requirements".  This demo runs the
tunable access method with its dynamic tuner through three workload
phases — read-heavy, write-heavy, read-heavy again — and prints the
knob positions and per-phase I/O so you can watch the structure morph
across the RUM triangle and back.
"""

from __future__ import annotations

import random

from repro.analysis.tables import format_table
from repro.core.tuner import DynamicTuner, TunableAccessMethod, TunerPolicy
from repro.storage.device import SimulatedDevice

N = 6000
PHASE_OPS = 1200


_fresh_key = [2 * N + 1]  # odd keys: never collide with the loaded data


def run_phase(method, tuner, rng, write_fraction: float):
    """Drive one phase; returns (reads, writes, simulated time)."""
    device = method.device
    before = device.snapshot()
    for _ in range(PHASE_OPS):
        if rng.random() < write_fraction:
            if rng.random() < 0.5:
                method.update(2 * rng.randrange(N), rng.randrange(10**6))
            else:
                method.insert(_fresh_key[0], _fresh_key[0])
                _fresh_key[0] += 2
            tuner.observe_write()
        else:
            method.get(2 * rng.randrange(N))
            tuner.observe_read()
    stats = device.stats_since(before)
    return stats.reads, stats.writes, stats.simulated_time


def main() -> None:
    rng = random.Random(7)
    method = TunableAccessMethod(
        SimulatedDevice(), read_optimization=0.5, write_optimization=0.5
    )
    method.bulk_load([(2 * i, i) for i in range(N)])
    tuner = DynamicTuner(method, TunerPolicy(window=150, step=0.12))

    phases = [
        ("read-heavy  (90% reads)", 0.10),
        ("write-heavy (85% writes)", 0.85),
        ("read-heavy  (90% reads)", 0.10),
    ]
    rows = []
    for label, write_fraction in phases:
        reads, writes, time = run_phase(method, tuner, rng, write_fraction)
        rows.append(
            [
                label,
                f"r={method.read_optimization:.2f}",
                f"w={method.write_optimization:.2f}",
                reads,
                writes,
                time,
            ]
        )
    print(format_table(
        ["phase", "read knob", "write knob", "block reads", "block writes",
         "simulated time"],
        rows,
        title="Dynamic RUM balance across workload phases",
    ))
    print()
    print("Knob trajectory (every tuner adjustment):")
    trail = " -> ".join(f"({r:.2f},{w:.2f})" for r, w in tuner.adjustments)
    print("  " + trail)
    print()
    print("The tuner raises read optimization in read phases (investing")
    print("memory in fences and filters) and write absorption in write")
    print("phases (buffering into differential runs) - Figure 3, live.")


if __name__ == "__main__":
    main()
