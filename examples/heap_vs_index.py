"""The paper's opening example, live: a heap file with and without an index.

Run with::

    python examples/heap_vs_index.py

"When data is stored in a heap file without an index, we have to
perform costly scans to locate any data we are interested in.
Conversely, a tree index on top of the heap file, uses additional space
in order to substitute the scan with a more lightweight index probe."

This demo builds the same dataset three ways — bare heap, heap + B+-Tree
secondary index, heap + hash secondary index — and prints the measured
RUM decomposition of the composition: what the index saves on reads,
and what it costs in space and update maintenance.
"""

from __future__ import annotations

import random

from repro.analysis.tables import format_table
from repro.core.registry import create_method
from repro.storage.device import SimulatedDevice

N = 10_000


def main() -> None:
    configurations = [
        ("bare heap", "unsorted-column", {}),
        ("heap + B+-Tree index", "indexed-heap", dict(index_kind="tree")),
        ("heap + hash index", "indexed-heap", dict(index_kind="hash")),
    ]
    rows = []
    for label, name, kwargs in configurations:
        method = create_method(name, device=SimulatedDevice(), **kwargs)
        method.bulk_load([(2 * i, i) for i in range(N)])
        rng = random.Random(1)
        device = method.device

        before = device.snapshot()
        for _ in range(100):
            method.get(2 * rng.randrange(N))
        point_io = device.stats_since(before)

        before = device.snapshot()
        method.range_query(5000, 5400)
        range_io = device.stats_since(before)

        before = device.snapshot()
        for offset in rng.sample(range(N), 100):
            method.insert(2 * offset + 1, offset)
        insert_io = device.stats_since(before)

        rows.append(
            [
                label,
                point_io.reads / 100,
                range_io.reads,
                (insert_io.reads + insert_io.writes) / 100,
                method.space_bytes() / method.base_bytes(),
            ]
        )

    print(format_table(
        ["organization", "point reads/op", "range reads (200 rows)",
         "insert I/Os/op", "MO"],
        rows,
        title=f"The introduction's example at N={N} (4 KiB blocks)",
    ))
    print()
    print("The index substitutes a multi-hundred-block scan with a few")
    print("probes - and pays for it in auxiliary space (MO > 1) and in")
    print("index maintenance on every insert. Read, Update, Memory:")
    print("pick which two to favor.")


if __name__ == "__main__":
    main()
