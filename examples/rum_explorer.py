"""RUM explorer: place every access method in the paper's triangle.

Run with::

    python examples/rum_explorer.py [workload]

where ``workload`` is one of the named mixes (balanced, read-only,
read-mostly, write-heavy, insert-only, scan-heavy; default balanced).
Every registered structure is measured under the chosen mix and drawn
in the RUM triangle — a live regeneration of the paper's Figure 1 for
*your* workload, showing how the placement shifts with the mix.
"""

from __future__ import annotations

import sys

from repro import MIXES, available_methods, create_method, run_workload
from repro.analysis.tables import format_table
from repro.analysis.triangle import render_triangle
from repro.core.space import project_field

#: Excluded from the generic sweep: MagicArray has a set API; the bitmap
#: index answers value-predicate queries (see bitmap_analytics.py).
EXCLUDED = {"bitmap"}


def main() -> None:
    mix_name = sys.argv[1] if len(sys.argv) > 1 else "balanced"
    if mix_name not in MIXES:
        raise SystemExit(f"unknown workload {mix_name!r}; pick one of {sorted(MIXES)}")
    spec = MIXES[mix_name].scaled(initial_records=4000, operations=1500)

    print(f"Measuring every access method under the {mix_name!r} mix ...")
    profiles = {}
    for name in available_methods():
        if name in EXCLUDED:
            continue
        result = run_workload(create_method(name), spec)
        profiles[name] = result.profile
        print(f"  {name:20s} done")
    print()

    rows = [
        [name, p.read_overhead, p.update_overhead, p.memory_overhead]
        for name, p in sorted(profiles.items())
    ]
    print(format_table(["method", "RO", "UO", "MO"], rows,
                       title=f"RUM profiles under {mix_name!r}"))
    print()
    points = project_field(profiles)
    print(render_triangle([points[name] for name in sorted(points)]))


if __name__ == "__main__":
    main()
