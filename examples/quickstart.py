"""Quickstart: build an access method, run a workload, read its RUM profile.

Run with::

    python examples/quickstart.py

This walks the three core moves of the library:

1. create any registered access method (here a B+-Tree and an LSM tree),
2. drive it through a declarative workload,
3. read off the measured RUM overheads — the paper's read / update /
   memory amplification — and see the tradeoff between the two designs.
"""

from __future__ import annotations

from repro import WorkloadSpec, available_methods, create_method, run_workload


def main() -> None:
    print("Registered access methods:")
    print("  " + ", ".join(available_methods()))
    print()

    # A mixed workload: mostly point reads, a steady stream of writes.
    spec = WorkloadSpec(
        point_queries=0.5,
        range_queries=0.05,
        inserts=0.25,
        updates=0.15,
        deletes=0.05,
        operations=2000,
        initial_records=10_000,
        seed=42,
    )

    print(f"Workload: {spec.operations} operations over "
          f"{spec.initial_records} records "
          f"(reads {spec.point_queries + spec.range_queries:.0%}, "
          f"writes {spec.inserts + spec.updates + spec.deletes:.0%})")
    print()

    for name in ("btree", "lsm"):
        method = create_method(name)
        result = run_workload(method, spec)
        profile = result.profile
        print(f"{name:>8}:  RO={profile.read_overhead:8.2f}x   "
              f"UO={profile.update_overhead:8.2f}x   "
              f"MO={profile.memory_overhead:6.3f}x   "
              f"(simulated time {profile.simulated_time:10.0f})")

    print()
    print("The classic RUM trade, measured: the B+-Tree reads cheaper;")
    print("the LSM tree writes cheaper; both pay space over the raw data.")
    print("No tuning of either can win all three at once - that is the")
    print("RUM Conjecture (run `pytest benchmarks/ --benchmark-only`")
    print("to regenerate every figure and table of the paper).")


if __name__ == "__main__":
    main()
