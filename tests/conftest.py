"""Shared fixtures for the test suite.

Small block sizes (256 bytes = 16 records) are used throughout so that
multi-block code paths (splits, chains, spills, compactions) are hit
with small datasets, keeping the suite fast while exercising more edge
cases than production-sized blocks would.
"""

from __future__ import annotations

import pytest

from repro.storage.device import SimulatedDevice

SMALL_BLOCK = 256  # 16 records per block


@pytest.fixture
def device() -> SimulatedDevice:
    """A small-block device for structure tests."""
    return SimulatedDevice(block_bytes=SMALL_BLOCK)


def make_device() -> SimulatedDevice:
    """Non-fixture constructor for parameterized/property tests."""
    return SimulatedDevice(block_bytes=SMALL_BLOCK)


def sample_records(n: int, stride: int = 2, start: int = 0):
    """n records with keys start, start+stride, ... and derived values."""
    return [(start + stride * i, (start + stride * i) * 10 + 1) for i in range(n)]
