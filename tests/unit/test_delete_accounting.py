"""Delete-path write accounting regressions.

Both column layouts used to write a block's *empty* payload immediately
before freeing it on the delete path — a dead write that charged a
spurious block to UO every time a trailing block emptied.  These tests
pin the fixed counter behaviour.
"""

from __future__ import annotations

from repro.methods.sorted_column import SortedColumn
from repro.methods.unsorted_column import UnsortedColumn
from repro.storage.device import SimulatedDevice
from repro.storage.layout import records_per_block

from tests.conftest import SMALL_BLOCK


def _build(cls):
    device = SimulatedDevice(block_bytes=SMALL_BLOCK)
    method = cls(device=device)
    per_block = records_per_block(SMALL_BLOCK)
    # One full block plus a single-record trailing block.
    records = [(2 * i, i) for i in range(per_block + 1)]
    method.bulk_load(records)
    method.flush()
    return method, device, records


class TestSortedColumnDelete:
    def test_emptying_the_trailing_block_writes_nothing(self):
        method, device, records = _build(SortedColumn)
        blocks_before = device.allocated_blocks
        writes_before = device.counters.writes
        method.delete(records[-1][0])  # sole record of the trailing block
        assert device.counters.writes == writes_before, (
            "freeing an emptied block must not write its empty payload"
        )
        assert device.allocated_blocks == blocks_before - 1
        assert method.audit() == []

    def test_partial_trailing_block_still_writes_once(self):
        method, device, records = _build(SortedColumn)
        method.insert(records[-1][0] + 2, 99)  # trailing block now holds 2
        writes_before = device.counters.writes
        method.delete(records[-1][0])
        assert device.counters.writes == writes_before + 1
        assert method.audit() == []

    def test_delete_down_to_empty(self):
        method, device, records = _build(SortedColumn)
        for key, _ in reversed(records):
            method.delete(key)
        assert len(method) == 0
        assert device.allocated_blocks == 0
        assert method.audit() == []


class TestUnsortedColumnDelete:
    def test_non_tail_delete_that_empties_tail_writes_only_the_hole(self):
        method, device, records = _build(UnsortedColumn)
        blocks_before = device.allocated_blocks
        writes_before = device.counters.writes
        method.delete(records[0][0])  # hole in block 0, filled from tail
        assert device.counters.writes == writes_before + 1, (
            "only the hole block should be rewritten; the emptied tail "
            "is freed without a write"
        )
        assert device.allocated_blocks == blocks_before - 1
        assert method.get(records[-1][0]) is not None  # tail record moved
        assert method.audit() == []

    def test_tail_delete_of_last_record_writes_nothing(self):
        method, device, records = _build(UnsortedColumn)
        writes_before = device.counters.writes
        method.delete(records[-1][0])  # the tail block's only record
        assert device.counters.writes == writes_before
        assert method.audit() == []

    def test_non_tail_delete_with_surviving_tail_writes_twice(self):
        method, device, records = _build(UnsortedColumn)
        method.insert(1001, 1)  # tail now holds 2 records
        writes_before = device.counters.writes
        method.delete(records[0][0])
        assert device.counters.writes == writes_before + 2  # hole + tail
        assert method.audit() == []

    def test_delete_down_to_empty(self):
        method, device, records = _build(UnsortedColumn)
        for key, _ in records:
            method.delete(key)
        assert len(method) == 0
        assert device.allocated_blocks == 0
        assert method.audit() == []
