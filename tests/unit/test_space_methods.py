"""Structure-specific tests for the space-optimized family:
ZoneMaps, sparse index, approximate index."""

from __future__ import annotations

import pytest

from repro.methods.approximate_index import ApproximateTreeIndex
from repro.methods.sparse_index import SparseIndexColumn
from repro.methods.zonemap import ZoneMapColumn
from repro.storage.device import SimulatedDevice

from tests.conftest import SMALL_BLOCK, sample_records


def zonemap(**kwargs):
    defaults = dict(partition_records=64)
    defaults.update(kwargs)
    return ZoneMapColumn(SimulatedDevice(block_bytes=SMALL_BLOCK), **defaults)


def sparse(**kwargs):
    return SparseIndexColumn(SimulatedDevice(block_bytes=SMALL_BLOCK), **kwargs)


def approx(**kwargs):
    defaults = dict(partition_records=64)
    defaults.update(kwargs)
    return ApproximateTreeIndex(SimulatedDevice(block_bytes=SMALL_BLOCK), **defaults)


class TestZoneMaps:
    def test_synopsis_prunes_clustered_data(self):
        column = zonemap()
        column.bulk_load(sample_records(1024))  # sorted: disjoint zones
        before = column.device.snapshot()
        column.get(512)
        io = column.device.stats_since(before)
        # Synopsis blocks + exactly one partition (4 blocks at P=64).
        assert io.reads <= 2 + 4

    def test_partition_count(self):
        column = zonemap(partition_records=64)
        column.bulk_load(sample_records(1000))
        assert column.partitions == -(-1000 // 64)

    def test_synopsis_space_is_small(self):
        column = zonemap()
        column.bulk_load(sample_records(2048))
        assert column.synopsis_bytes() < column.base_bytes() * 0.05

    def test_overlapping_zones_degrade_gracefully(self):
        # Insert keys in an order that forces the last partition's zone
        # to span everything: queries then touch extra partitions but
        # stay correct.
        column = zonemap(partition_records=16)
        column.bulk_load(sample_records(64))
        column.insert(1, 10)      # low key -> widens the tail zone
        column.insert(2001, 20)   # high key -> widens it further
        assert column.get(1) == 10
        assert column.get(2001) == 20
        assert column.get(64) == 641

    def test_delete_refreshes_zone(self):
        column = zonemap(partition_records=16)
        column.bulk_load(sample_records(64))
        column.delete(0)  # the minimum of partition 0
        assert column.get(0) is None
        assert column.get(2) == 21

    def test_validation(self):
        with pytest.raises(ValueError):
            zonemap(partition_records=0)


class TestSparseIndex:
    def test_index_is_sparse(self):
        column = sparse()
        column.bulk_load(sample_records(2048))
        # One entry per data block: far smaller than the data.
        assert column.index_bytes() < column.base_bytes() * 0.1

    def test_point_query_cost(self):
        column = sparse()
        column.bulk_load(sample_records(2048))
        before = column.device.snapshot()
        column.get(2048)
        io = column.device.stats_since(before)
        # Binary search over index blocks + one data block.
        assert io.reads <= 6

    def test_overflow_chains_absorb_inserts(self):
        column = sparse(rebuild_overflow_ratio=10.0)  # never rebuild
        column.bulk_load(sample_records(128))
        for i in range(64):
            column.insert(2 * i + 1, i)  # odd keys into full blocks
        assert column.overflow_records > 0
        assert column.get(33) == 16

    def test_rebuild_clears_overflow(self):
        column = sparse(rebuild_overflow_ratio=10.0)
        column.bulk_load(sample_records(128))
        for i in range(64):
            column.insert(2 * i + 1, i)
        column.rebuild()
        assert column.overflow_records == 0
        assert column.get(33) == 16
        assert len(column) == 192

    def test_auto_rebuild_at_threshold(self):
        column = sparse(rebuild_overflow_ratio=0.1)
        column.bulk_load(sample_records(64))
        for i in range(32):
            column.insert(2 * i + 1, i)
        assert column.overflow_records < 32  # a rebuild happened

    def test_mutations_in_overflow(self):
        column = sparse(rebuild_overflow_ratio=10.0)
        column.bulk_load(sample_records(64))
        column.insert(33, 5)
        column.update(33, 6)
        assert column.get(33) == 6
        column.delete(33)
        assert column.get(33) is None


class TestApproximateIndex:
    def test_filter_skips_absent_partitions(self):
        index = approx()
        index.bulk_load(sample_records(512))
        before = index.device.snapshot()
        misses = 0
        for key in range(1, 200, 8):  # odd keys: absent
            assert index.get(key) is None
            misses += 1
        io = index.device.stats_since(before)
        # Mostly filter-block reads; data scans only on false positives.
        assert io.reads < misses * 3

    def test_filters_updatable_on_insert_and_delete(self):
        index = approx()
        index.bulk_load(sample_records(128))
        index.insert(33, 5)
        assert index.get(33) == 5
        index.delete(33)
        assert index.get(33) is None
        # The quotient filter forgot the key: probing it is cheap again.
        before = index.device.snapshot()
        index.get(33)
        assert index.device.stats_since(before).reads <= 4

    def test_filter_space_fraction(self):
        index = approx()
        index.bulk_load(sample_records(1024))
        assert 0 < index.filter_bytes() < index.base_bytes() * 0.6

    def test_filter_overflow_triggers_rebuild(self):
        index = approx(partition_records=8, remainder_bits=4)
        index.bulk_load(sample_records(8))
        # Push far more keys than the initial filter was sized for.
        for i in range(64):
            index.insert(2 * i + 1, i)
        assert index.get(63) == 31
        assert len(index) == 72

    def test_partitions_split_by_range(self):
        index = approx(partition_records=32)
        index.bulk_load(sample_records(128))
        assert index.partitions == 4
