"""Unit tests for the device's batched I/O surface.

``read_many`` / ``write_many`` promise byte-identity with the per-op
``read`` / ``write`` loop: same counter totals, same sequential/random
classification, same occupancy accounting, same trace events, and on a
failing position the same exception with the successful prefix already
committed.  These tests pin every clause of that contract, including the
vectorized write path (batches >= 512) and its validate-then-fall-back
behaviour.
"""

from __future__ import annotations

import pytest

from repro.obs.sinks import ListSink
from repro.obs.tracer import RecordingTracer
from repro.storage.device import SimulatedDevice

BLOCK = 256


def _fresh(n_blocks: int) -> SimulatedDevice:
    device = SimulatedDevice(block_bytes=BLOCK)
    for _ in range(n_blocks):
        device.allocate()
    device.reset_counters()
    return device


def _counter_dict(device: SimulatedDevice) -> dict:
    counters = device.counters
    return {
        "reads": counters.reads,
        "writes": counters.writes,
        "read_bytes": counters.read_bytes,
        "write_bytes": counters.write_bytes,
        "simulated_time": counters.simulated_time,
    }


class TestReadMany:
    def test_matches_per_op_counters_and_payloads(self):
        ids = [(7 * i) % 16 for i in range(40)] + list(range(16))
        per_op = _fresh(16)
        batched = _fresh(16)
        for device in (per_op, batched):
            for block in range(16):
                device.write(block, f"payload-{block}")
            device.reset_counters()
        expected = [per_op.read(block) for block in ids]
        got = batched.read_many(ids)
        assert got == expected
        assert _counter_dict(batched) == _counter_dict(per_op)

    def test_sequential_classification_spans_batch_boundary(self):
        # The id following the previous batch's last access counts as
        # sequential, exactly as it would in a per-op loop.
        device = _fresh(8)
        device.read_many([0, 1, 2])
        device.read_many([3, 4])
        per_op = _fresh(8)
        for block in (0, 1, 2, 3, 4):
            per_op.read(block)
        assert _counter_dict(device) == _counter_dict(per_op)

    def test_empty_batch_is_free(self):
        device = _fresh(4)
        assert device.read_many([]) == []
        assert device.counters.reads == 0

    def test_unallocated_block_commits_prefix(self):
        device = _fresh(4)
        with pytest.raises(KeyError, match="read of unallocated block 99"):
            device.read_many([0, 1, 99, 2])
        # The two successful reads are counted; the failed one is not.
        assert device.counters.reads == 2
        per_op = _fresh(4)
        per_op.read(0)
        per_op.read(1)
        with pytest.raises(KeyError, match="read of unallocated block 99"):
            per_op.read(99)
        assert _counter_dict(device) == _counter_dict(per_op)

    def test_traced_reads_emit_identical_events(self):
        ids = [0, 1, 5, 2, 3]

        def run(batched: bool) -> list:
            sink = ListSink()
            device = _fresh(8)
            device.set_tracer(RecordingTracer(sink))
            if batched:
                device.read_many(ids)
            else:
                for block in ids:
                    device.read(block)
            return [event.to_dict() for event in sink.events]

        assert run(batched=True) == run(batched=False)


class TestWriteMany:
    def test_matches_per_op_counters_and_state(self):
        ids = [(3 * i) % 8 for i in range(30)]
        payloads = [f"p{i}" for i in range(30)]
        used = [(i * 13) % (BLOCK + 1) for i in range(30)]
        per_op = _fresh(8)
        batched = _fresh(8)
        for block, payload, occupancy in zip(ids, payloads, used):
            per_op.write(block, payload, occupancy)
        batched.write_many(ids, payloads, used)
        assert _counter_dict(batched) == _counter_dict(per_op)
        for block in range(8):
            assert batched.peek(block) == per_op.peek(block)
            assert batched.used_bytes_of(block) == per_op.used_bytes_of(block)
        assert batched.fill_factor() == per_op.fill_factor()

    def test_duplicate_ids_last_write_wins(self):
        device = _fresh(4)
        device.write_many([2, 2, 2], ["a", "b", "c"], [10, 20, 30])
        assert device.peek(2) == "c"
        assert device.used_bytes_of(2) == 30
        assert device.counters.writes == 3

    def test_length_mismatch_rejected(self):
        device = _fresh(2)
        with pytest.raises(ValueError, match="equal-length"):
            device.write_many([0, 1], ["a"], [0, 0])
        with pytest.raises(ValueError, match="equal-length"):
            device.write_many([0], ["a"], [0, 0])
        assert device.counters.writes == 0

    def test_empty_batch_is_free(self):
        device = _fresh(2)
        device.write_many([], [], [])
        assert device.counters.writes == 0

    def test_unallocated_block_commits_prefix(self):
        device = _fresh(4)
        with pytest.raises(KeyError, match="write of unallocated block 77"):
            device.write_many([0, 1, 77], ["a", "b", "c"], [5, 6, 7])
        assert device.counters.writes == 2
        assert device.peek(1) == "b"
        assert device.used_bytes_of(1) == 6

    def test_invalid_used_bytes_matches_per_op_error(self):
        batched = _fresh(4)
        with pytest.raises(ValueError) as batched_error:
            batched.write_many([0, 1], ["a", "b"], [0, BLOCK + 1])
        per_op = _fresh(4)
        per_op.write(0, "a", 0)
        with pytest.raises(ValueError) as per_op_error:
            per_op.write(1, "b", BLOCK + 1)
        assert str(batched_error.value) == str(per_op_error.value)
        assert _counter_dict(batched) == _counter_dict(per_op)

    def test_traced_writes_emit_identical_events(self):
        ids = [0, 1, 3, 1]
        payloads = ["a", "b", "c", "d"]
        used = [4, 8, 12, 16]

        def run(batched: bool) -> list:
            sink = ListSink()
            device = _fresh(4)
            device.set_tracer(RecordingTracer(sink))
            if batched:
                device.write_many(ids, payloads, used)
            else:
                for block, payload, occupancy in zip(ids, payloads, used):
                    device.write(block, payload, occupancy)
            return [event.to_dict() for event in sink.events]

        assert run(batched=True) == run(batched=False)


class TestWriteManyVectorized:
    """Batches >= 512 take the numpy path; same contract, checked again."""

    N = 600  # above _VECTOR_MIN_BATCH

    def _batch(self):
        ids = [(7 * i) % 64 for i in range(self.N)]
        payloads = [i for i in range(self.N)]
        used = [(i * 13) % (BLOCK + 1) for i in range(self.N)]
        return ids, payloads, used

    def test_matches_per_op_counters_and_state(self):
        ids, payloads, used = self._batch()
        per_op = _fresh(64)
        batched = _fresh(64)
        for block, payload, occupancy in zip(ids, payloads, used):
            per_op.write(block, payload, occupancy)
        batched.write_many(ids, payloads, used)
        assert _counter_dict(batched) == _counter_dict(per_op)
        for block in range(64):
            assert batched.peek(block) == per_op.peek(block)
            assert batched.used_bytes_of(block) == per_op.used_bytes_of(block)

    def test_invalid_position_replays_per_op(self):
        # A bad used_bytes deep in a large batch: validation fails, the
        # reference loop replays, and the error + committed prefix are
        # exactly the per-op ones.
        ids, payloads, used = self._batch()
        used[555] = BLOCK + 1
        batched = _fresh(64)
        with pytest.raises(ValueError) as batched_error:
            batched.write_many(ids, payloads, used)
        per_op = _fresh(64)
        with pytest.raises(ValueError) as per_op_error:
            for block, payload, occupancy in zip(ids, payloads, used):
                per_op.write(block, payload, occupancy)
        assert str(batched_error.value) == str(per_op_error.value)
        assert batched.counters.writes == 555
        assert _counter_dict(batched) == _counter_dict(per_op)

    def test_unallocated_block_replays_per_op(self):
        ids, payloads, used = self._batch()
        ids[520] = 10_000  # never allocated
        batched = _fresh(64)
        with pytest.raises(KeyError, match="write of unallocated block 10000"):
            batched.write_many(ids, payloads, used)
        assert batched.counters.writes == 520

    def test_sequential_run_classified_in_bulk(self):
        # A fully sequential large batch must count like a per-op
        # sequential sweep (first access random, the rest sequential):
        # same simulated time on a cost model that distinguishes them.
        from repro.storage.device import CostModel

        n = 600
        per_op = SimulatedDevice(block_bytes=BLOCK, cost_model=CostModel.disk())
        batched = SimulatedDevice(block_bytes=BLOCK, cost_model=CostModel.disk())
        for device in (per_op, batched):
            for _ in range(n):
                device.allocate()
            device.reset_counters()
        for block in range(n):
            per_op.write(block, block, 0)
        batched.write_many(list(range(n)), list(range(n)), [0] * n)
        assert _counter_dict(batched) == _counter_dict(per_op)
