"""Documentation meta-tests: every public item carries a docstring.

The library's documentation contract (README: "doc comments on every
public item") is enforced here rather than hoped for: every public
module, class, method and function in ``repro`` must have a docstring.
Private names (leading underscore) and trivially inherited members are
exempt.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro

EXEMPT_METHODS = {
    # dataclass/namedtuple machinery and dunder plumbing
    "__init__",
    "__repr__",
    "__eq__",
    "__hash__",
    "__len__",
    "__new__",
    "__reduce__",
    "__add__",
    "__post_init__",
}


def _iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name == "repro.__main__":
            continue  # importing it runs the CLI
        yield importlib.import_module(info.name)


ALL_MODULES = sorted(_iter_modules(), key=lambda module: module.__name__)


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_public_classes_and_functions_documented(module):
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; documented at its definition site
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
            continue
        if inspect.isclass(obj):
            for member_name in dir(obj):
                if member_name.startswith("_") or member_name in EXEMPT_METHODS:
                    continue
                member = getattr(obj, member_name, None)
                if not callable(member) or not inspect.isfunction(
                    inspect.unwrap(member)
                ):
                    continue
                # getdoc follows the MRO: an override is documented when
                # its base-class contract (e.g. AccessMethod.get) is.
                if not (inspect.getdoc(member) or "").strip():
                    undocumented.append(f"{name}.{member_name}")
    assert not undocumented, f"{module.__name__}: missing docstrings on {undocumented}"
