"""Structure-specific tests for the B+-Tree (beyond the shared contract)."""

from __future__ import annotations

import random

import pytest

from repro.methods.btree import BPlusTree
from repro.storage.device import SimulatedDevice

from tests.conftest import SMALL_BLOCK, sample_records


def small_tree(**kwargs):
    defaults = dict(leaf_capacity=4, fanout=4, sort_memory_blocks=4)
    defaults.update(kwargs)
    return BPlusTree(SimulatedDevice(block_bytes=SMALL_BLOCK), **defaults)


class TestShape:
    def test_height_grows_logarithmically(self):
        tree = small_tree()
        tree.bulk_load(sample_records(500))
        # leaf capacity 4, fanout 4: height ~ log_3.6(140 leaves) + 1.
        assert 3 <= tree.height <= 8

    def test_empty_tree_height_zero(self):
        tree = small_tree()
        assert tree.height == 0

    def test_single_record_tree(self):
        tree = small_tree()
        tree.insert(1, 10)
        assert tree.height == 1
        assert tree.get(1) == 10

    def test_height_increases_on_splits(self):
        tree = small_tree()
        heights = []
        for i in range(100):
            tree.insert(i, i)
            heights.append(tree.height)
        assert heights[-1] > heights[0]
        # Heights never decrease during pure inserts.
        assert all(b >= a for a, b in zip(heights, heights[1:]))

    def test_point_query_reads_height_blocks(self):
        tree = small_tree()
        tree.bulk_load(sample_records(500))
        before = tree.device.snapshot()
        tree.get(500)
        io = tree.device.stats_since(before)
        assert io.reads == tree.height


class TestSplitFill:
    def test_invalid_split_fill(self):
        with pytest.raises(ValueError):
            small_tree(split_fill=0.01)

    def test_sequential_inserts_pack_better_with_high_fill(self):
        dense_tree = small_tree(split_fill=0.9)
        even_tree = small_tree(split_fill=0.5)
        for i in range(300):
            dense_tree.insert(i, i)
            even_tree.insert(i, i)
        # Right-leaning splits leave fewer, fuller leaves for sequential keys.
        assert dense_tree.device.allocated_blocks < even_tree.device.allocated_blocks

    def test_correctness_across_fills(self):
        for fill in (0.3, 0.5, 0.8):
            tree = small_tree(split_fill=fill)
            records = sample_records(200)
            tree.bulk_load(records)
            for key, value in records:
                assert tree.get(key) == value


class TestDeletionRebalancing:
    def test_delete_everything(self):
        tree = small_tree()
        records = sample_records(100)
        tree.bulk_load(records)
        rng = random.Random(5)
        keys = [key for key, _ in records]
        rng.shuffle(keys)
        for key in keys:
            tree.delete(key)
        assert len(tree) == 0
        assert tree.height == 0
        assert tree.get(0) is None

    def test_delete_releases_blocks(self):
        tree = small_tree()
        tree.bulk_load(sample_records(200))
        blocks_full = tree.device.allocated_blocks
        for key, _ in sample_records(200):
            tree.delete(key)
        assert tree.device.allocated_blocks < blocks_full

    def test_interleaved_delete_insert(self):
        tree = small_tree()
        tree.bulk_load(sample_records(50))
        rng = random.Random(9)
        oracle = dict(sample_records(50))
        for i in range(200):
            if rng.random() < 0.5 and oracle:
                key = rng.choice(sorted(oracle))
                tree.delete(key)
                del oracle[key]
            else:
                key = 1000 + i
                tree.insert(key, key)
                oracle[key] = key
        for key, value in oracle.items():
            assert tree.get(key) == value

    def test_range_after_heavy_deletes(self):
        tree = small_tree()
        records = sample_records(100)
        tree.bulk_load(records)
        for key, _ in records[::2]:
            tree.delete(key)
        expected = sorted(records[1::2])
        assert tree.range_query(-1, 10**9) == expected


class TestKnobValidation:
    def test_leaf_capacity_minimum(self):
        with pytest.raises(ValueError):
            small_tree(leaf_capacity=1)

    def test_fanout_minimum(self):
        with pytest.raises(ValueError):
            small_tree(fanout=2)

    def test_duplicate_insert_rejected(self):
        tree = small_tree()
        tree.insert(1, 10)
        with pytest.raises(ValueError):
            tree.insert(1, 20)

    def test_bulk_load_rejects_duplicates(self):
        tree = small_tree()
        with pytest.raises(ValueError):
            tree.bulk_load([(1, 1), (1, 2)])


class TestBulkLoadCost:
    def test_bulk_load_charges_sort_io(self):
        tree = small_tree()
        records = sample_records(1000)
        # Shuffle so the external sort actually has work to do.
        rng = random.Random(3)
        rng.shuffle(records)
        tree.bulk_load(records)
        # The sort + build must have written more than the final size.
        assert tree.device.counters.writes > tree.device.allocated_blocks

    def test_loaded_leaves_are_chained(self):
        tree = small_tree()
        records = sample_records(300)
        tree.bulk_load(records)
        assert tree.range_query(-1, 10**9) == sorted(records)
