"""Structure-specific tests for the hash index."""

from __future__ import annotations

import pytest

from repro.methods.hashindex import HashIndex
from repro.storage.device import SimulatedDevice

from tests.conftest import SMALL_BLOCK, sample_records


def make(**kwargs):
    return HashIndex(SimulatedDevice(block_bytes=SMALL_BLOCK), **kwargs)


class TestConstantTimeProbes:
    def test_point_query_is_one_block_after_bulk_load(self):
        index = make()
        index.bulk_load(sample_records(1000))
        # "Perfect" sizing: every bucket one block, probes read exactly 1.
        before = index.device.snapshot()
        for key in range(0, 200, 20):
            index.get(key)
        io = index.device.stats_since(before)
        assert io.reads == 10

    def test_probe_cost_independent_of_n(self):
        costs = {}
        for n in (200, 2000):
            index = make()
            index.bulk_load(sample_records(n))
            before = index.device.snapshot()
            for key in range(0, 100, 10):
                index.get(key)
            costs[n] = index.device.stats_since(before).reads
        assert costs[2000] <= costs[200] * 1.5

    def test_miss_probe_also_constant(self):
        index = make()
        index.bulk_load(sample_records(500))
        before = index.device.snapshot()
        for key in range(1, 100, 10):  # odd keys: absent
            assert index.get(key) is None
        io = index.device.stats_since(before)
        assert io.reads <= 20  # ~1 block per miss, chains permitting


class TestResizing:
    def test_directory_doubles_under_inserts(self):
        index = make(initial_buckets=2, load_factor_limit=0.7)
        buckets_before = index.buckets
        for i in range(400):
            index.insert(i, i)
        assert index.buckets > buckets_before
        # Power-of-two growth.
        assert index.buckets & (index.buckets - 1) == 0

    def test_static_mode_never_resizes(self):
        index = make(initial_buckets=2, load_factor_limit=None)
        for i in range(300):
            index.insert(i, i)
        assert index.buckets == 2
        # Correct, just chained.
        assert index.get(250) == 250
        assert max(index.chain_lengths()) > 1

    def test_contents_survive_resize(self):
        index = make(initial_buckets=2, load_factor_limit=0.5)
        oracle = {}
        for i in range(500):
            index.insert(i, i * 3)
            oracle[i] = i * 3
        for key, value in oracle.items():
            assert index.get(key) == value

    def test_perfect_bulk_sizing_has_no_chains(self):
        index = make()
        index.bulk_load(sample_records(2000))
        assert max(index.chain_lengths()) == 1


class TestSpace:
    def test_directory_charged_to_space(self):
        small = make(initial_buckets=4, load_factor_limit=None)
        large = make(initial_buckets=1024, load_factor_limit=None)
        assert large.space_bytes() > small.space_bytes()

    def test_validation(self):
        with pytest.raises(ValueError):
            make(initial_buckets=0)


class TestChains:
    def test_overflow_chain_grow_and_shrink(self):
        index = make(initial_buckets=1, load_factor_limit=None)
        for i in range(40):  # 16 records per block: needs 3 blocks
            index.insert(i, i)
        assert max(index.chain_lengths()) >= 2
        for i in range(40):
            index.delete(i)
        assert len(index) == 0
        assert index.get(5) is None

    def test_update_in_chain(self):
        index = make(initial_buckets=1, load_factor_limit=None)
        for i in range(40):
            index.insert(i, i)
        index.update(39, 999)  # lives in the overflow chain
        assert index.get(39) == 999
