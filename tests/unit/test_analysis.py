"""Unit tests for the analysis package: Table-1 models, shape fitting,
triangle rendering and table formatting."""

from __future__ import annotations

import math

import pytest

from repro.analysis.complexity import TABLE1_MODELS, Table1Params, expected_winner
from repro.analysis.fitting import (
    best_fit,
    fit_scores,
    grows_at_least_linear,
    grows_at_most_log,
    growth_ratio,
    is_flat,
)
from repro.analysis.tables import format_table
from repro.analysis.triangle import describe_point, render_triangle
from repro.core.rum import RUMProfile
from repro.core.space import project


class TestTable1Models:
    def test_all_six_rows_present(self):
        assert set(TABLE1_MODELS) == {
            "btree",
            "hash-index",
            "zonemap",
            "lsm",
            "sorted-column",
            "unsorted-column",
        }

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            Table1Params(N=0)

    def test_hash_point_query_is_constant(self):
        model = TABLE1_MODELS["hash-index"]
        small = model.point_query(Table1Params(N=1000))
        large = model.point_query(Table1Params(N=1_000_000))
        assert small == large == 1.0

    def test_btree_point_query_grows_logarithmically(self):
        model = TABLE1_MODELS["btree"]
        costs = [model.point_query(Table1Params(N=n)) for n in (10**3, 10**6, 10**9)]
        assert costs[0] < costs[1] < costs[2]
        # Log growth: tripling the exponent triples the cost.
        assert costs[2] / costs[0] == pytest.approx(3.0, rel=0.01)

    def test_unsorted_scan_is_linear(self):
        model = TABLE1_MODELS["unsorted-column"]
        small = model.point_query(Table1Params(N=1000))
        large = model.point_query(Table1Params(N=100_000))
        assert large / small == pytest.approx(100.0, rel=0.01)

    def test_zonemap_smallest_index(self):
        params = Table1Params(N=1_000_000)
        sizes = {
            name: model.index_size(params) for name, model in TABLE1_MODELS.items()
        }
        # Columns have no index; among true indexes, zonemap is smallest.
        indexed = {k: v for k, v in sizes.items() if k in ("btree", "hash-index", "zonemap", "lsm")}
        assert min(indexed, key=indexed.get) == "zonemap"

    def test_paper_stated_winners(self):
        params = Table1Params(N=1_000_000, m=100)
        for operation, candidates in (
            ("point_query", ("btree", "hash-index", "zonemap", "lsm")),
            ("range_query", ("btree", "hash-index", "zonemap", "lsm")),
            # For updates the paper crowns hash among in-place indexes;
            # the LSM's *amortized* formula dips below O(1) by design
            # ("LSM can support ... very low update cost as well").
            ("update", ("btree", "hash-index", "zonemap")),
        ):
            winner = expected_winner(operation)
            indexed = {
                name: getattr(TABLE1_MODELS[name], operation)(params)
                for name in candidates
            }
            assert indexed[winner] == min(indexed.values()), operation

    def test_unknown_winner_operation(self):
        with pytest.raises(KeyError):
            expected_winner("bulk_creation")

    def test_row_returns_all_costs(self):
        row = TABLE1_MODELS["btree"].row(Table1Params(N=10_000))
        assert set(row) == {
            "bulk_creation",
            "index_size",
            "point_query",
            "range_query",
            "update",
        }

    def test_lsm_update_cheaper_than_sorted_column(self):
        params = Table1Params(N=1_000_000)
        lsm = TABLE1_MODELS["lsm"].update(params)
        sorted_col = TABLE1_MODELS["sorted-column"].update(params)
        assert lsm < sorted_col


class TestFitting:
    def test_constant_series(self):
        ns = [100, 1000, 10_000, 100_000]
        assert best_fit(ns, [5, 5.1, 4.9, 5]) == "constant"

    def test_log_series(self):
        ns = [100, 1000, 10_000, 100_000]
        assert best_fit(ns, [math.log(n) for n in ns]) == "log"

    def test_linear_series(self):
        ns = [100, 1000, 10_000, 100_000]
        assert best_fit(ns, [3 * n for n in ns]) == "linear"

    def test_nlogn_series(self):
        ns = [100, 1000, 10_000, 100_000]
        assert best_fit(ns, [n * math.log(n) for n in ns]) == "nlogn"

    def test_sqrt_series(self):
        ns = [100, 1000, 10_000, 100_000]
        assert best_fit(ns, [math.sqrt(n) for n in ns]) == "sqrt"

    def test_needs_three_points(self):
        with pytest.raises(ValueError):
            best_fit([1, 2], [1, 2])

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            fit_scores([1, 2, 3], [1, 2])

    def test_growth_ratio(self):
        assert growth_ratio([10, 100], [2.0, 8.0]) == pytest.approx(4.0)

    def test_is_flat(self):
        assert is_flat([10, 100, 1000], [5, 5.5, 6])
        assert not is_flat([10, 100, 1000], [5, 50, 500])

    def test_grows_at_most_log(self):
        ns = [10, 100, 1000]
        assert grows_at_most_log(ns, [math.log(n) for n in ns])
        assert not grows_at_most_log(ns, [n for n in ns])

    def test_grows_at_least_linear(self):
        ns = [10, 100, 1000]
        assert grows_at_least_linear(ns, [n * 2 for n in ns])
        assert not grows_at_least_linear(ns, [math.log(n) for n in ns])


class TestTriangleRendering:
    def _points(self):
        profiles = [
            RUMProfile(1.0, 50.0, 20.0, name="reader"),
            RUMProfile(50.0, 1.0, 20.0, name="writer"),
            RUMProfile(50.0, 20.0, 1.0, name="saver"),
        ]
        return [project(profile) for profile in profiles]

    def test_renders_all_labels(self):
        art = render_triangle(self._points())
        assert "a = reader" in art
        assert "b = writer" in art
        assert "c = saver" in art

    def test_renders_corner_markers(self):
        art = render_triangle(self._points())
        assert "R" in art and "U" in art and "M" in art

    def test_no_legend_option(self):
        art = render_triangle(self._points(), legend=False)
        assert "reader" not in art

    def test_size_validation(self):
        with pytest.raises(ValueError):
            render_triangle(self._points(), width=5)

    def test_describe_point(self):
        point = project(RUMProfile(1.0, 2.0, 4.0, name="x"))
        text = describe_point(point)
        assert "x:" in text and "read-affinity" in text


class TestTables:
    def test_basic_rendering(self):
        table = format_table(["name", "value"], [["a", 1], ["bb", 2.5]])
        assert "name" in table
        assert "2.50" in table

    def test_title(self):
        table = format_table(["x"], [[1]], title="My Table")
        assert table.startswith("My Table")

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_large_floats_scientific(self):
        table = format_table(["v"], [[1.5e9]])
        assert "e+09" in table

    def test_bool_rendering(self):
        table = format_table(["flag"], [[True], [False]])
        assert "yes" in table and "no" in table

    def test_nan_rendering(self):
        table = format_table(["v"], [[float("nan")]])
        assert "nan" in table
