"""Unit tests for the serving tier: sessions, OCC, versions, and WAL.

Crash/recovery sweeps live in ``test_serve_recovery.py``; this module
covers the live-path semantics — snapshot isolation, validation,
the pre-image overlay, and the log's record format and bookkeeping.
"""

from __future__ import annotations

import pytest

from repro.core.registry import create_method
from repro.serve import (
    ABSENT,
    CommitLog,
    Server,
    SyncPolicy,
    Transaction,
    TransactionConflict,
    TransactionStateError,
    TxnStatus,
    VersionStore,
    WalRecord,
    WriteAheadLog,
)
from repro.serve.versions import CURRENT, merge_snapshot_range
from repro.serve.wal import (
    CHECKPOINT,
    COMMIT,
    DELETE,
    PUT,
    WAL_BLOCK_KIND,
    decode_record,
)
from repro.storage.device import SimulatedDevice


def make_server(records=20, **kwargs):
    method = create_method("btree")
    method.bulk_load([(key, key * 10) for key in range(0, records * 2, 2)])
    return Server(method, **kwargs)


class TestSessions:
    def test_connect_assigns_distinct_clients(self):
        server = make_server()
        a, b = server.connect(), server.connect()
        assert a.client_id != b.client_id

    def test_operations_require_active_txn(self):
        session = make_server().connect()
        with pytest.raises(TransactionStateError):
            session.get(0)
        with pytest.raises(TransactionStateError):
            session.commit()

    def test_double_begin_rejected(self):
        session = make_server().connect()
        session.begin()
        with pytest.raises(TransactionStateError):
            session.begin()

    def test_committed_txn_is_finished(self):
        session = make_server().connect()
        txn = session.begin()
        session.put(0, 111)
        session.commit()
        assert txn.status is TxnStatus.COMMITTED
        assert not session.in_txn
        with pytest.raises(TransactionStateError):
            session.get(0)


class TestTransactions:
    def test_read_own_writes(self):
        session = make_server().connect()
        session.begin()
        session.put(99, 1234)
        assert session.get(99) == 1234
        session.delete(0)
        assert session.get(0) is None
        # Own writes are not reads: they observed no committed state.
        assert session.txn.read_keys == set()

    def test_commit_applies_buffered_writes(self):
        server = make_server()
        session = server.connect()
        session.begin()
        session.put(2, 999)
        session.delete(4)
        session.put(101, 5)
        version = session.commit()
        assert version == 1
        assert server.method.get(2) == 999
        assert server.method.get(4) is None
        assert server.method.get(101) == 5

    def test_snapshot_read_sees_pre_commit_value(self):
        server = make_server()
        reader, writer = server.connect(), server.connect()
        reader.begin()
        assert reader.get(2) == 20
        writer.begin()
        writer.put(2, 999)
        writer.commit()
        # The reader's snapshot predates the overwrite.
        assert reader.get(2) == 20
        assert server.method.get(2) == 999

    def test_snapshot_range_rewinds_overwrites_and_deletes(self):
        server = make_server()
        reader, writer = server.connect(), server.connect()
        reader.begin()
        writer.begin()
        writer.put(2, 999)
        writer.delete(4)
        writer.put(5, 555)  # new key, invisible to the old snapshot
        writer.commit()
        records = dict(reader.range(0, 8))
        assert records == {0: 0, 2: 20, 4: 40, 6: 60, 8: 80}

    def test_read_set_conflict_aborts(self):
        server = make_server()
        reader, writer = server.connect(), server.connect()
        reader.begin()
        reader.get(2)
        writer.begin()
        writer.put(2, 999)
        writer.commit()
        reader.put(6, 1)  # make it a writer so validation runs
        with pytest.raises(TransactionConflict) as excinfo:
            reader.commit()
        assert excinfo.value.key == 2
        assert excinfo.value.version == 1

    def test_range_conflict_catches_phantoms(self):
        server = make_server()
        scanner, writer = server.connect(), server.connect()
        scanner.begin()
        scanner.range(0, 10)
        writer.begin()
        writer.put(5, 555)  # a key the scan never saw, inside its range
        writer.commit()
        scanner.put(100, 1)
        with pytest.raises(TransactionConflict):
            scanner.commit()

    def test_disjoint_writers_both_commit(self):
        server = make_server()
        a, b = server.connect(), server.connect()
        a.begin()
        b.begin()
        a.put(0, 1)
        b.put(2, 2)
        assert a.commit() == 1
        assert b.commit() == 2

    def test_read_only_txn_never_conflicts(self):
        server = make_server()
        reader, writer = server.connect(), server.connect()
        reader.begin()
        reader.get(2)
        writer.begin()
        writer.put(2, 999)
        writer.commit()
        # Snapshot reads are a consistent prefix; commit is free.
        assert reader.commit() == 0

    def test_abort_discards_writes(self):
        server = make_server()
        session = server.connect()
        session.begin()
        session.put(2, 999)
        session.abort()
        assert server.method.get(2) == 20
        assert session.aborts == 1

    def test_versions_and_commit_log_prune_when_idle(self):
        server = make_server()
        session = server.connect()
        for index in range(5):
            session.begin()
            session.put(index, index)
            session.commit()
        # No active snapshots: nothing older is observable.
        assert server.versions.entry_count == 0
        assert server.commit_log.entry_count == 0


class TestAbortAccounting:
    def test_requested_abort_counts_on_server(self):
        server = make_server()
        session = server.connect()
        session.begin()
        session.put(2, 999)
        session.abort()
        assert server.aborts == 1
        assert session.aborts == 1

    def test_conflict_abort_counts_on_server_and_session(self):
        server = make_server()
        reader, writer = server.connect(), server.connect()
        reader.begin()
        reader.get(2)
        writer.begin()
        writer.put(2, 999)
        writer.commit()
        reader.put(6, 1)
        with pytest.raises(TransactionConflict):
            reader.commit()
        # A conflict is an abort on both ledgers, not a silent retry.
        assert server.aborts == 1
        assert reader.aborts == 1
        assert reader.commits == 0

    def test_ledger_balances_across_mixed_outcomes(self):
        server = make_server()
        a, b = server.connect(), server.connect()
        b.begin()
        b.get(0)
        a.begin()
        a.put(0, 1)
        a.commit()  # a: commit
        b.put(2, 2)
        with pytest.raises(TransactionConflict):
            b.commit()  # b: conflict abort
        b.begin()
        b.put(4, 4)
        b.commit()  # b: commit
        a.begin()
        a.put(6, 6)
        a.abort()  # a: requested abort
        for session in (a, b):
            assert session.commits + session.aborts == session.begins
        assert server.commits == 2
        assert server.aborts == 2


class TestSyncPolicy:
    def test_per_commit_is_always_ready(self):
        policy = SyncPolicy.every_commit()
        assert not policy.batches
        assert policy.ready(1, 0.0)
        assert policy.label == "every-commit"

    def test_group_size_threshold(self):
        policy = SyncPolicy.every_n(4)
        assert policy.batches
        assert not policy.ready(3, 1e9)  # no deadline: count is all
        assert policy.ready(4, 0.0)
        assert policy.label == "group=4"

    def test_deadline_threshold(self):
        policy = SyncPolicy.after_deadline(5.0, group_size=8)
        assert not policy.ready(7, 4.9)
        assert policy.ready(7, 5.0)  # oldest waited long enough
        assert policy.ready(8, 0.0)  # group filled first
        assert policy.label == "group=8,deadline=5"

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            SyncPolicy(group_size=0)
        with pytest.raises(ValueError):
            SyncPolicy(deadline=-1.0)


class TestGroupCommit:
    def test_commits_park_until_group_is_full(self):
        server = make_server(sync_policy=SyncPolicy.every_n(3))
        sessions = [server.connect() for _ in range(3)]
        for index, session in enumerate(sessions[:2]):
            session.begin()
            session.put(index * 2, 1000 + index)
            session.commit()
        # Two parked: unacked tickets, method untouched, version pinned.
        assert server.parked_commits == 2
        assert all(s.commit_pending for s in sessions[:2])
        assert server.method.get(0) == 0
        assert server.version == 0
        sessions[2].begin()
        sessions[2].put(4, 1002)
        sessions[2].commit()
        # The third commit fills the group: one sync, all applied.
        assert server.parked_commits == 0
        assert server.group_syncs == 1
        assert server.version == 3
        assert server.method.get(0) == 1000
        assert server.method.get(2) == 1001
        assert server.method.get(4) == 1002
        for session in sessions:
            assert session.reap()
        assert sum(s.commits for s in sessions) == 3
        assert server.commits == 3

    def test_one_wal_sync_covers_the_whole_group(self):
        server = make_server(sync_policy=SyncPolicy.every_n(4))
        before = server.wal.syncs
        for index in range(4):
            session = server.connect()
            session.begin()
            session.put(100 + index, index)
            session.commit()
        assert server.wal.syncs == before + 1

    def test_parked_writes_participate_in_validation(self):
        server = make_server(sync_policy=SyncPolicy.every_n(4))
        writer, reader = server.connect(), server.connect()
        reader.begin()
        reader.get(2)
        writer.begin()
        writer.put(2, 999)
        writer.commit()  # parks: durable later, but validation-visible now
        reader.put(6, 1)
        with pytest.raises(TransactionConflict):
            reader.commit()

    def test_poll_group_respects_policy_unless_forced(self):
        server = make_server(sync_policy=SyncPolicy.every_n(8))
        session = server.connect()
        session.begin()
        session.put(0, 1)
        session.commit()
        assert session.commit_pending
        assert server.poll_group() == 0  # group of 1 is not ready
        assert server.poll_group(force=True) == 1
        assert session.reap()
        assert server.method.get(0) == 1

    def test_snapshots_pin_to_applied_not_assigned_version(self):
        server = make_server(sync_policy=SyncPolicy.every_n(2))
        writer, reader = server.connect(), server.connect()
        writer.begin()
        writer.put(2, 999)
        writer.commit()  # parked, unapplied
        reader.begin()
        assert reader.get(2) == 20  # snapshot at applied version 0
        server.poll_group(force=True)
        # The group applied, but the open snapshot still rewinds it.
        assert reader.get(2) == 20
        assert server.method.get(2) == 999

    def test_checkpoint_drains_parked_group_first(self):
        server = make_server(sync_policy=SyncPolicy.every_n(8))
        session = server.connect()
        session.begin()
        session.put(0, 1)
        session.commit()
        server.checkpoint()
        assert server.parked_commits == 0
        assert server.method.get(0) == 1
        assert session.reap()

    def test_read_only_commit_acks_immediately_under_batching(self):
        server = make_server(sync_policy=SyncPolicy.every_n(4))
        session = server.connect()
        session.begin()
        assert session.get(2) == 20
        session.commit()
        assert not session.commit_pending
        assert session.commits == 1
        assert server.parked_commits == 0

    def test_begin_reaps_the_previous_parked_commit(self):
        server = make_server(sync_policy=SyncPolicy.every_n(2))
        session = server.connect()
        session.begin()
        session.put(0, 1)
        session.commit()
        assert session.commit_pending and session.commits == 0
        other = server.connect()
        other.begin()
        other.put(2, 2)
        other.commit()  # fills the group; both tickets ack
        session.begin()  # folds the acked ticket before reuse
        assert session.commits == 1
        session.abort()


class TestVersionStore:
    def test_read_at_returns_earliest_later_preimage(self):
        store = VersionStore()
        store.record_preimage(7, 3, 70)
        store.record_preimage(7, 5, 71)
        assert store.read_at(7, 2) == 70
        assert store.read_at(7, 3) == 71
        assert store.read_at(7, 4) == 71
        assert store.read_at(7, 5) is CURRENT
        assert store.read_at(8, 1) is CURRENT

    def test_out_of_order_preimage_rejected(self):
        store = VersionStore()
        store.record_preimage(1, 5, 0)
        with pytest.raises(ValueError):
            store.record_preimage(1, 5, 0)

    def test_prune_drops_unobservable_entries(self):
        store = VersionStore()
        store.record_preimage(1, 2, 10)
        store.record_preimage(1, 6, 11)
        assert store.prune(oldest_snapshot=4) == 1
        assert store.read_at(1, 3) == 11  # the v6 pre-image survives
        assert store.prune(oldest_snapshot=6) == 1
        assert store.entry_count == 0

    def test_merge_snapshot_range(self):
        store = VersionStore()
        store.record_preimage(2, 4, 20)     # overwritten after snapshot
        store.record_preimage(3, 4, ABSENT)  # created after snapshot
        store.record_preimage(4, 4, 40)     # deleted after snapshot
        live = [(1, 11), (2, 999), (3, 333)]
        merged = merge_snapshot_range(live, store, snapshot=3, lo=0, hi=10)
        assert merged == [(1, 11), (2, 20), (4, 40)]


class TestCommitLog:
    def test_conflict_is_first_after_snapshot(self):
        log = CommitLog()
        log.record(1, [5])
        log.record(2, [6])
        log.record(3, [5, 7])
        assert log.conflict(0, [5]) == (1, 5)
        assert log.conflict(1, [5]) == (3, 5)
        assert log.conflict(3, [5, 6, 7]) is None

    def test_range_conflict(self):
        log = CommitLog()
        log.record(1, [15])
        assert log.conflict(0, [], read_ranges=[(10, 20)]) == (1, 15)
        assert log.conflict(0, [], read_ranges=[(16, 20)]) is None

    def test_prune(self):
        log = CommitLog()
        log.record(1, [1])
        log.record(2, [2])
        assert log.prune(1) == 1
        assert log.entry_count == 1
        assert log.conflict(0, [1]) is None  # pruned; no snapshot needs it


class TestWalRecords:
    def test_roundtrip(self):
        record = WalRecord(lsn=3, txn_id=7, kind=PUT, key=10, value=20)
        assert decode_record(record.encoded()) == record

    @pytest.mark.parametrize("mutation", [
        lambda e: e[:5],                       # wrong arity
        lambda e: ["torn-write"],              # scar payload
        lambda e: e[:4] + [e[4] + 1, e[5]],    # value flipped, stale CRC
        lambda e: e[:2] + ["nope"] + e[3:],    # unknown kind
        lambda e: "not-a-list",
    ])
    def test_damage_decodes_to_none(self, mutation):
        entry = WalRecord(lsn=0, txn_id=1, kind=DELETE, key=2, value=0).encoded()
        assert decode_record(mutation(entry)) is None


class TestWriteAheadLog:
    def make_wal(self, block_bytes=128):
        return WriteAheadLog(SimulatedDevice(block_bytes=block_bytes))

    def test_append_assigns_contiguous_lsns(self):
        wal = self.make_wal()
        first = wal.append(1, PUT, 10, 100)
        second = wal.append(1, COMMIT, 1)
        assert (first.lsn, second.lsn) == (0, 1)
        assert wal.pending_records == 2

    def test_sync_writes_fresh_blocks_only(self):
        wal = self.make_wal(block_bytes=64)  # 2 records per block
        for index in range(3):
            wal.append(1, PUT, index, index)
        assert wal.sync() == 2
        before = wal.blocks
        wal.append(2, PUT, 9, 9)
        wal.sync()
        # Durable blocks are never rewritten; the new record got a
        # fresh block even though the last one had room.
        assert wal.blocks[: len(before)] == before
        assert len(wal.blocks) == len(before) + 1

    def test_replay_roundtrips_synced_records(self):
        wal = self.make_wal()
        wal.append(1, PUT, 10, 100)
        wal.append(1, DELETE, 11)
        wal.append(1, COMMIT, 1)
        wal.sync()
        fresh = WriteAheadLog(wal.device)
        records, truncated = fresh.replay()
        assert not truncated
        assert [r.kind for r in records] == [PUT, DELETE, COMMIT]
        assert fresh.next_lsn == 3

    def test_replay_truncates_damaged_block_and_everything_after(self):
        device = SimulatedDevice(block_bytes=64)
        wal = WriteAheadLog(device)
        wal.append(1, PUT, 1, 1)
        wal.append(1, COMMIT, 1)
        wal.sync()
        wal.append(2, PUT, 2, 2)
        wal.append(2, COMMIT, 2)
        wal.sync()
        wal.append(3, PUT, 3, 3)
        wal.append(3, COMMIT, 3)
        wal.sync()
        middle = wal.blocks[1]
        device.write(middle, ("torn-write",), used_bytes=0)
        fresh = WriteAheadLog(device)
        records, truncated = fresh.replay()
        assert truncated
        # Only txn 1 survives: the damaged middle block and the intact
        # block after it are both dropped (LSN continuity would break).
        assert [r.txn_id for r in records] == [1, 1]
        assert len(fresh.blocks) == 1

    def test_checkpoint_frees_older_blocks(self):
        wal = self.make_wal(block_bytes=64)
        for index in range(6):
            wal.append(1, PUT, index, index)
        wal.sync()
        blocks_before = len(wal.blocks)
        freed = wal.checkpoint(applied_version=5)
        assert freed == blocks_before
        assert len(wal.blocks) == 1
        records, _ = WriteAheadLog(wal.device).replay()
        assert [r.kind for r in records] == [CHECKPOINT]
        assert WriteAheadLog.last_checkpoint(records) == 5

    def test_iter_committed_orders_and_filters(self):
        wal = self.make_wal()
        wal.append(5, PUT, 50, 500)
        wal.append(5, COMMIT, 2)
        wal.append(6, PUT, 60, 600)  # no commit record: never durable
        wal.append(7, DELETE, 70)
        wal.append(7, COMMIT, 3)
        wal.sync()
        records, _ = WriteAheadLog(wal.device).replay()
        groups = list(wal.iter_committed(records, after_version=0))
        assert [(v, t) for v, t, _ in groups] == [(2, 5), (3, 7)]
        assert list(wal.iter_committed(records, after_version=2))[0][0] == 3

    def test_wal_blocks_carry_their_kind(self):
        wal = self.make_wal()
        wal.append(1, COMMIT, 1)
        wal.sync()
        device = wal.device
        kinds = {device.kind_of(b) for b in wal.blocks}
        assert kinds == {WAL_BLOCK_KIND}

    def test_block_too_small_rejected(self):
        with pytest.raises(ValueError):
            WriteAheadLog(SimulatedDevice(block_bytes=16))


class TestReopen:
    def test_reopen_recounts_records(self):
        method = create_method("btree")
        method.bulk_load([(key, key) for key in range(10)])
        method._record_count = 3  # simulate lost in-memory bookkeeping
        method.reopen()
        assert method.audit() == []


class TestTransactionDataclass:
    def test_buffered_intent_is_final_per_key(self):
        txn = Transaction(txn_id=1, snapshot_version=0)
        txn.buffer_put(1, 10)
        txn.buffer_delete(1)
        txn.buffer_put(2, 20)
        assert txn.writes[1] is ABSENT
        assert txn.write_keys == (1, 2)
        assert not txn.is_read_only


class TestLiveTaps:
    """The serving tier's repro.obs.live wiring: counters balance the
    server ledger and run_bench surfaces the frames."""

    def make_live_server(self, width=50.0, **kwargs):
        from repro.obs.live import LiveRegistry

        live = LiveRegistry(width)
        return make_server(live=live, **kwargs), live

    def test_begin_commit_latency_land_in_windows(self):
        server, live = self.make_live_server()
        session = server.connect()
        session.begin()
        session.put(2, 999)
        session.commit()
        assert live.counter_total("txn-begin") == 1
        assert live.counter_total("txn-commit") == 1
        frames = live.snapshot()
        latency = frames[-1]["histograms"]["txn-latency"]
        assert latency["count"] == 1
        assert latency["p50"] >= 0.0

    def test_aborts_count_for_both_paths(self):
        server, live = self.make_live_server()
        requested = server.connect()
        requested.begin()
        requested.put(2, 1)
        requested.abort()
        reader, writer = server.connect(), server.connect()
        reader.begin()
        reader.get(2)
        writer.begin()
        writer.put(2, 5)
        writer.commit()
        reader.put(6, 1)
        with pytest.raises(TransactionConflict):
            reader.commit()
        # Requested + conflict aborts both reach the live counter, so it
        # always matches the server's own ledger.
        assert live.counter_total("txn-abort") == server.aborts == 2

    def test_group_commit_records_occupancy_and_wal_bytes(self):
        server, live = self.make_live_server(
            sync_policy=SyncPolicy(group_size=2)
        )
        a, b = server.connect(), server.connect()
        a.begin()
        a.put(1, 10)
        a.commit()  # parks: group of 1
        b.begin()
        b.put(3, 30)
        b.commit()  # fills the group; the sync fires
        frames = live.snapshot()
        merged_hist = [
            frame["histograms"]["group-occupancy"]
            for frame in frames
            if "group-occupancy" in frame["histograms"]
        ]
        assert merged_hist and merged_hist[-1]["max"] == 2.0
        assert live.counter_total("wal-sync") == 1
        assert live.counter_total("wal-bytes") > 0
        assert live.counter_total("txn-commit") == 2

    def test_run_bench_without_live_window_reports_none(self):
        from repro.serve.bench import run_bench

        report = run_bench(
            create_method("btree"), clients=2, txns_per_client=3, records=48
        )
        assert report.live_frames is None

    def test_run_bench_live_frames_balance_the_report(self):
        from repro.serve.bench import run_bench

        report = run_bench(
            create_method("btree"),
            clients=4,
            txns_per_client=5,
            records=64,
            live_window=50.0,
        )
        frames = report.live_frames
        assert frames  # at least one window formed

        def total(name):
            return sum(f["counters"].get(name, 0) for f in frames)

        # Snapshot only shows retained windows; the bench's default ring
        # is wide enough that nothing evicts at this scale.
        assert total("txn-commit") == report.total_commits
        assert total("txn-begin") == report.total_commits + report.total_conflicts
        latency_count = sum(
            f["histograms"]["txn-latency"]["count"]
            for f in frames
            if "txn-latency" in f["histograms"]
        )
        assert latency_count == report.total_commits


class TestBenchPercentile:
    def test_percentile_matches_histogram_nearest_rank(self):
        from repro.serve.bench import _percentile

        assert _percentile([1.0, 2.0, 3.0, 4.0, 5.0], 0.50) == 3.0
        assert _percentile([1.0, 2.0, 3.0, 4.0], 0.50) == 2.0
        assert _percentile([1.0, 2.0, 3.0, 4.0, 5.0], 0.99) == 5.0
        assert _percentile([], 0.99) == 0.0
