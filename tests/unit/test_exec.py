"""Unit tests for ``repro.exec`` — the parallel sweep engine.

The contract under test:

* a parallel run is *byte-identical* to a serial run of the same grid
  (compare the canonical envelopes, not just rough equality);
* the result cache hits on unchanged cells, misses on any configuration
  change, and invalidates structurally on a salt (version) change;
* a warm rerun of an unchanged grid executes zero workloads;
* tracing runs refuse untraced cache entries, and traced envelopes
  merge back with contiguous sequence numbers.
"""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.exec import ResultCache, SweepCell, SweepEngine, run_workload_cell
from repro.exec.engine import (
    estimate_cell_units,
    execute_cell_payload,
    resolve_runner,
)
from repro.exec.serialize import (
    cell_seed,
    decode_cell,
    decode_envelope,
    encode_cell,
    encode_envelope,
    envelope_is_traced,
)
from repro.storage.device import CostModel
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.runner import WorkloadResult, run_workload
from repro.workloads.spec import WorkloadSpec

SPEC = WorkloadSpec(
    point_queries=0.4,
    inserts=0.3,
    updates=0.2,
    deletes=0.1,
    operations=120,
    initial_records=400,
)

METHODS = ["btree", "lsm", "hash-index", "sorted-column"]


def _cells(spec=SPEC, methods=METHODS):
    return [SweepCell.make(name, spec, block_bytes=256) for name in methods]


class TestCellSerialization:
    def test_cell_round_trips(self):
        cell = SweepCell.make(
            "lsm",
            SPEC,
            label="lsm@tuned",
            block_bytes=512,
            cost_model=CostModel.disk(),
            overrides=dict(memtable_records=64, size_ratio=3),
            params=dict(n=1024),
        )
        assert decode_cell(encode_cell(cell)) == cell

    def test_encoding_is_canonical(self):
        a = SweepCell.make("btree", SPEC, overrides=dict(b=2, a=1))
        b = SweepCell.make("btree", SPEC, overrides=dict(a=1, b=2))
        assert encode_cell(a) == encode_cell(b)

    def test_different_cells_encode_differently(self):
        base = SweepCell.make("btree", SPEC)
        assert encode_cell(base) != encode_cell(SweepCell.make("lsm", SPEC))
        assert encode_cell(base) != encode_cell(
            SweepCell.make("btree", SPEC, block_bytes=512)
        )

    def test_seed_depends_only_on_the_cell(self):
        payload = encode_cell(SweepCell.make("btree", SPEC))
        assert cell_seed(payload, "s") == cell_seed(payload, "s")
        assert cell_seed(payload, "s") != cell_seed(payload, "t")

    def test_workload_result_round_trips(self):
        result = run_workload_cell(SweepCell.make("btree", SPEC, block_bytes=256))
        envelope = encode_envelope(result, None)
        decoded = decode_envelope(envelope)["result"]
        assert isinstance(decoded, WorkloadResult)
        assert decoded == result
        # And re-encoding the decoded result is byte-stable.
        assert encode_envelope(decoded, None) == envelope


class TestRunnerResolution:
    def test_resolves_the_default_runner(self):
        assert resolve_runner("repro.exec.engine:run_workload_cell") is run_workload_cell

    def test_malformed_reference_rejected(self):
        with pytest.raises(ValueError):
            resolve_runner("no_colon_here")

    def test_missing_function_rejected(self):
        with pytest.raises(AttributeError):
            resolve_runner("repro.exec.engine:not_a_runner")


class TestSerialParallelEquivalence:
    def test_parallel_results_byte_identical_to_serial(self):
        cells = _cells()
        serial = SweepEngine(jobs=1).run(cells)
        parallel = SweepEngine(jobs=4).run(cells)
        serial_bytes = [encode_envelope(r, None) for r in serial.results]
        parallel_bytes = [encode_envelope(r, None) for r in parallel.results]
        assert serial_bytes == parallel_bytes

    def test_results_come_back_in_cell_order(self):
        outcome = SweepEngine(jobs=4).run(_cells())
        assert [r.method_name for r in outcome.results] == METHODS

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            SweepEngine(jobs=0)

    def test_by_label_maps_results(self):
        outcome = SweepEngine(jobs=1).run(_cells())
        mapping = outcome.by_label()
        assert set(mapping) == set(METHODS)
        assert mapping["btree"].method_name == "btree"

    def test_by_label_rejects_duplicates(self):
        cells = [SweepCell.make("btree", SPEC), SweepCell.make("btree", SPEC)]
        outcome = SweepEngine(jobs=1).run(cells)
        with pytest.raises(ValueError):
            outcome.by_label()


class TestResultCache:
    def test_warm_rerun_executes_nothing(self, tmp_path):
        cache = ResultCache(root=str(tmp_path / "cache"))
        cells = _cells()
        cold = SweepEngine(jobs=1, cache=cache).run(cells)
        assert cold.executed_cells == len(cells)
        assert cold.cached_cells == 0
        warm = SweepEngine(jobs=1, cache=cache).run(cells)
        assert warm.executed_cells == 0
        assert warm.cached_cells == len(cells)
        assert [encode_envelope(r, None) for r in warm.results] == [
            encode_envelope(r, None) for r in cold.results
        ]

    def test_parallel_warm_rerun_also_hits(self, tmp_path):
        cache = ResultCache(root=str(tmp_path / "cache"))
        SweepEngine(jobs=1, cache=cache).run(_cells())
        warm = SweepEngine(jobs=4, cache=cache).run(_cells())
        assert warm.executed_cells == 0

    def test_changed_cell_misses(self, tmp_path):
        cache = ResultCache(root=str(tmp_path / "cache"))
        SweepEngine(jobs=1, cache=cache).run(_cells())
        changed = _cells(
            spec=SPEC.scaled(initial_records=SPEC.initial_records, operations=121)
        )
        outcome = SweepEngine(jobs=1, cache=cache).run(changed)
        assert outcome.executed_cells == len(changed)

    def test_stale_salt_invalidates(self, tmp_path):
        root = str(tmp_path / "cache")
        SweepEngine(jobs=1, cache=ResultCache(root=root, salt="v1")).run(_cells())
        outcome = SweepEngine(
            jobs=1, cache=ResultCache(root=root, salt="v2")
        ).run(_cells())
        assert outcome.executed_cells == len(METHODS)

    def test_salt_defaults_to_library_version(self, tmp_path):
        import repro

        cache = ResultCache(root=str(tmp_path / "cache"))
        assert cache.salt == repro.__version__

    def test_entry_count_and_clear(self, tmp_path):
        cache = ResultCache(root=str(tmp_path / "cache"))
        SweepEngine(jobs=1, cache=cache).run(_cells())
        assert cache.entry_count() == len(METHODS)
        assert cache.clear() == len(METHODS)
        assert cache.entry_count() == 0

    def test_hit_and_miss_accounting(self, tmp_path):
        cache = ResultCache(root=str(tmp_path / "cache"))
        cells = _cells()
        SweepEngine(jobs=1, cache=cache).run(cells)
        assert cache.misses == len(cells)
        SweepEngine(jobs=1, cache=cache).run(cells)
        assert cache.hits == len(cells)

    def test_no_cache_always_executes(self, tmp_path):
        engine = SweepEngine(jobs=1)
        first = engine.run(_cells())
        second = engine.run(_cells())
        assert first.executed_cells == second.executed_cells == len(METHODS)


class TestTracing:
    def test_traced_run_merges_events_contiguously(self):
        outcome = SweepEngine(jobs=2, collect_events=True).run(_cells())
        events = outcome.events
        assert events, "traced sweep produced no events"
        assert [event.seq for event in events] == list(range(len(events)))
        assert {event.source for event in events} == set(METHODS)

    def test_traced_run_matches_serial_traced_run(self):
        serial = SweepEngine(jobs=1, collect_events=True).run(_cells())
        parallel = SweepEngine(jobs=4, collect_events=True).run(_cells())
        assert serial.events == parallel.events

    def test_traced_events_carry_span_stamps(self):
        """Workers run inside span_collection, so every device event in
        the merged stream is stamped with its op-root span path."""
        outcome = SweepEngine(jobs=2, collect_events=True).run(_cells())
        spans = {event.span for event in outcome.events}
        assert any(span.startswith("op.") for span in spans), spans
        # bulk_load happens inside a span too — nothing before the first
        # operation leaks out unstamped.
        assert "op.bulk_load" in {s.split("/")[0] for s in spans if s}

    def test_cached_replay_preserves_span_stamps(self, tmp_path):
        cache = ResultCache(root=str(tmp_path / "cache"))
        cold = SweepEngine(jobs=1, cache=cache, collect_events=True).run(_cells())
        warm = SweepEngine(jobs=1, cache=cache, collect_events=True).run(_cells())
        assert warm.executed_cells == 0
        assert [e.span for e in warm.events] == [e.span for e in cold.events]

    def test_untraced_cache_entry_does_not_satisfy_traced_run(self, tmp_path):
        cache = ResultCache(root=str(tmp_path / "cache"))
        SweepEngine(jobs=1, cache=cache).run(_cells())
        traced = SweepEngine(jobs=1, cache=cache, collect_events=True).run(_cells())
        assert traced.executed_cells == len(METHODS)
        # The traced envelopes replaced the entries: a traced rerun hits.
        warm = SweepEngine(jobs=1, cache=cache, collect_events=True).run(_cells())
        assert warm.executed_cells == 0
        assert warm.events == traced.events

    def test_untraced_run_accepts_traced_entry(self, tmp_path):
        cache = ResultCache(root=str(tmp_path / "cache"))
        SweepEngine(jobs=1, cache=cache, collect_events=True).run(_cells())
        outcome = SweepEngine(jobs=1, cache=cache).run(_cells())
        assert outcome.executed_cells == 0
        assert outcome.events is None


class TestCustomRunners:
    def test_json_runner_round_trips(self, tmp_path):
        cell = SweepCell.make(
            "btree",
            SPEC,
            params=dict(answer=42),
            runner="tests.unit.test_exec:json_cell_runner",
        )
        outcome = SweepEngine(jobs=1).run([cell])
        assert outcome.results[0] == {"method": "btree", "answer": 42}

    def test_execute_cell_payload_is_deterministic(self):
        payload = encode_cell(SweepCell.make("lsm", SPEC, block_bytes=256))
        first = execute_cell_payload((payload, False))
        second = execute_cell_payload((payload, False))
        assert first == second
        assert json.loads(first)["result"]["kind"] == "workload_result"


def json_cell_runner(cell, tracer=None):
    """Runner used by TestCustomRunners (must be module-level)."""
    return {"method": cell.method, "answer": cell.param_kwargs()["answer"]}


class TestConsumedGenerator:
    def test_run_workload_rejects_consumed_generator(self):
        from repro.core.registry import create_method

        spec = WorkloadSpec(point_queries=1.0, operations=20, initial_records=50)
        generator = WorkloadGenerator(spec)
        run_workload(create_method("btree"), spec, generator=generator)
        with pytest.raises(ValueError, match="already produced"):
            run_workload(create_method("btree"), spec, generator=generator)

    def test_fresh_generator_accepted(self):
        from repro.core.registry import create_method

        spec = WorkloadSpec(point_queries=1.0, operations=20, initial_records=50)
        result = run_workload(
            create_method("btree"), spec, generator=WorkloadGenerator(spec)
        )
        assert result.final_records > 0

    def test_consumed_flag_set_when_stream_is_handed_out(self):
        spec = WorkloadSpec(point_queries=1.0, operations=5, initial_records=10)
        generator = WorkloadGenerator(spec)
        assert not generator.consumed
        generator.initial_data()
        assert not generator.consumed
        generator.operations()
        assert generator.consumed


class TestGlobalRandomState:
    def test_serial_run_preserves_callers_random_state(self):
        """The in-process path seeds the global RNG per cell; the
        caller's stream must come back exactly where it left off."""
        import random

        random.seed(12345)
        expected = [random.random() for _ in range(5)]
        random.seed(12345)
        SweepEngine(jobs=1).run(_cells())
        assert [random.random() for _ in range(5)] == expected

    def test_state_restored_even_when_a_cell_raises(self):
        import random

        cell = SweepCell.make(
            "btree", SPEC, runner="tests.unit.test_exec:raising_runner"
        )
        random.seed(999)
        expected = [random.random() for _ in range(3)]
        random.seed(999)
        with pytest.raises(RuntimeError, match="boom"):
            SweepEngine(jobs=1).run([cell])
        assert [random.random() for _ in range(3)] == expected


def raising_runner(cell, tracer=None):
    """Runner used by TestGlobalRandomState (must be module-level)."""
    raise RuntimeError("boom")


class TestEnvelopeTracedFastPath:
    def test_fast_path_agrees_with_full_decode_untraced(self):
        result = run_workload_cell(SweepCell.make("btree", SPEC, block_bytes=256))
        envelope = encode_envelope(result, None)
        assert envelope_is_traced(envelope) is False
        assert (json.loads(envelope)["events"] is not None) is False

    def test_fast_path_agrees_with_full_decode_traced(self):
        outcome = SweepEngine(jobs=1, collect_events=True).run(_cells()[:1])
        envelope = encode_envelope(outcome.results[0], outcome.events)
        assert envelope_is_traced(envelope) is True
        assert (json.loads(envelope)["events"] is not None) is True

    def test_non_canonical_payload_falls_back_to_decoding(self):
        # Old or hand-edited entries may not start with the canonical
        # prefix; the check must still answer correctly via json.loads.
        assert envelope_is_traced('{"result": 1, "events": null}') is False
        assert envelope_is_traced('{"result": 1, "events": [1]}') is True


class TestSchedulerLifecycle:
    def test_pool_reuse_stays_byte_identical(self):
        """Two run() calls on one persistent engine match two fresh
        serial runs byte for byte — worker reuse leaks no state."""
        cells = _cells()
        serial = [
            encode_envelope(r, None)
            for r in SweepEngine(jobs=1).run(cells).results
        ] * 2
        with SweepEngine(jobs=2) as engine:
            engine.warm()
            reused = [
                encode_envelope(r, None)
                for _ in range(2)
                for r in engine.run(cells).results
            ]
        assert reused == serial

    def test_close_is_idempotent_and_engine_survives_it(self):
        engine = SweepEngine(jobs=2)
        first = engine.run(_cells())
        engine.close()
        engine.close()
        second = engine.run(_cells())  # lazily respawns the pool
        engine.close()
        assert [str(r) for r in first.results] == [str(r) for r in second.results]

    def test_context_manager_returns_engine(self):
        with SweepEngine(jobs=1) as engine:
            assert isinstance(engine, SweepEngine)


class TestCostScheduling:
    def test_estimate_grows_with_work(self):
        small = SweepCell.make("btree", SPEC)
        big_records = SweepCell.make(
            "btree", replace(SPEC, initial_records=SPEC.initial_records * 8)
        )
        big_ops = SweepCell.make(
            "btree", replace(SPEC, operations=SPEC.operations * 8)
        )
        assert estimate_cell_units(big_records) > estimate_cell_units(small)
        assert estimate_cell_units(big_ops) > estimate_cell_units(small)

    def test_dispatch_is_longest_predicted_first(self):
        specs = [
            replace(SPEC, initial_records=records)
            for records in (200, 3200, 400, 1600)
        ]
        cells = [SweepCell.make("btree", spec) for spec in specs]
        outcome = SweepEngine(jobs=1).run(cells)
        predicted = outcome.predicted_seconds
        dispatched = [predicted[i] for i in outcome.dispatch_order]
        assert dispatched == sorted(dispatched, reverse=True)
        assert outcome.dispatch_order[0] == 1  # the 3200-record cell

    def test_results_stay_in_cell_order_despite_reordering(self):
        specs = [
            replace(SPEC, initial_records=records)
            for records in (200, 3200, 400, 1600)
        ]
        cells = [
            SweepCell.make("btree", spec, label=f"r{spec.initial_records}")
            for spec in specs
        ]
        outcome = SweepEngine(jobs=2).run(cells)
        assert [r.spec.initial_records for r in outcome.results] == [
            200, 3200, 400, 1600,
        ]

    def test_observed_walls_refine_predictions(self):
        engine = SweepEngine(jobs=1)
        cells = _cells()
        first = engine.run(cells)
        second = engine.run(cells)
        # After observing real walls the engine predicts from measured
        # rates, not the cold default — predictions move.
        assert second.predicted_seconds != first.predicted_seconds
        assert all(p > 0 for p in second.predicted_seconds)

    def test_cache_meta_gives_exact_predictions(self, tmp_path):
        cache = ResultCache(root=str(tmp_path / "cache"))
        engine = SweepEngine(jobs=1, cache=cache)
        cold = engine.run(_cells())
        walls = [w for w in cold.cell_seconds if w is not None]
        assert len(walls) == len(METHODS)
        # Untraced entries cannot satisfy a traced run, so every cell
        # re-executes — but the wall recorded under the same key gives
        # a fresh engine (no observed rates) exact predictions.
        traced = SweepEngine(
            jobs=1, cache=cache, collect_events=True
        ).run(_cells())
        assert traced.executed_cells == len(METHODS)
        assert traced.predicted_seconds == pytest.approx(walls)


class TestWorkerSideCache:
    def test_workers_write_the_cache_and_parent_reads_back(self, tmp_path):
        cache = ResultCache(root=str(tmp_path / "cache"))
        cells = _cells()
        outcome = SweepEngine(jobs=2, cache=cache).run(cells)
        assert outcome.executed_cells == len(cells)
        assert cache.entry_count() == len(cells)
        serial = SweepEngine(jobs=1).run(cells)
        assert [encode_envelope(r, None) for r in outcome.results] == [
            encode_envelope(r, None) for r in serial.results
        ]

    def test_concurrent_same_key_writes_stay_consistent(self, tmp_path):
        """Duplicate cells race on one cache key across workers; the
        atomic write keeps the store consistent and byte-identical."""
        cache = ResultCache(root=str(tmp_path / "cache"))
        cells = [SweepCell.make("btree", SPEC) for _ in range(6)]
        outcome = SweepEngine(jobs=3, cache=cache).run(cells)
        assert cache.entry_count() == 1
        envelopes = {encode_envelope(r, None) for r in outcome.results}
        assert len(envelopes) == 1
        key = cache.key_for(encode_cell(cells[0]))
        assert cache.get(key) == envelopes.pop()

    def test_meta_sidecar_records_tracedness_and_wall(self, tmp_path):
        cache = ResultCache(root=str(tmp_path / "cache"))
        cell = _cells()[0]
        SweepEngine(jobs=2, cache=cache).run([cell])
        key = cache.key_for(encode_cell(cell))
        assert cache.traced(key) is False
        assert cache.wall_seconds(key) > 0
        SweepEngine(jobs=2, cache=cache, collect_events=True).run([cell])
        assert cache.traced(key) is True

    def test_metaless_entries_still_serve(self, tmp_path):
        """Entries written without a sidecar (the pre-scheduler layout)
        keep hitting: meta is an accelerator, not a requirement."""
        cache = ResultCache(root=str(tmp_path / "cache"))
        cell = _cells()[0]
        payload = encode_cell(cell)
        key = cache.key_for(payload)
        cache.put(key, execute_cell_payload((payload, False)))
        assert cache.get_meta(key) is None
        assert cache.traced(key) is None
        assert cache.wall_seconds(key) is None
        outcome = SweepEngine(jobs=1, cache=cache).run([cell])
        assert outcome.cached_cells == 1
        assert outcome.executed_cells == 0


class TestOrphanTmpSweep:
    """A writer crashing between mkstemp and os.replace leaks a ``.tmp``
    file; opening (or clearing) the cache must sweep stale ones."""

    @staticmethod
    def _plant_orphan(root, age_seconds=3600.0, prefix="ab"):
        import os
        import time

        subdir = os.path.join(root, prefix)
        os.makedirs(subdir, exist_ok=True)
        path = os.path.join(subdir, "tmpdeadbeef.tmp")
        with open(path, "w") as handle:
            handle.write("half-written envelope")
        stale = time.time() - age_seconds
        os.utime(path, (stale, stale))
        return path

    def test_open_sweeps_stale_orphans(self, tmp_path):
        import os

        root = str(tmp_path / "cache")
        orphan = self._plant_orphan(root)
        cache = ResultCache(root=root)
        assert cache.orphans_swept == 1
        assert not os.path.exists(orphan)

    def test_open_spares_fresh_tmp_files(self, tmp_path):
        import os

        root = str(tmp_path / "cache")
        fresh = self._plant_orphan(root, age_seconds=0.0)
        cache = ResultCache(root=root)
        # A sibling worker's in-flight write must not be deleted.
        assert cache.orphans_swept == 0
        assert os.path.exists(fresh)

    def test_clear_sweeps_orphans_regardless_of_age(self, tmp_path):
        import os

        root = str(tmp_path / "cache")
        fresh = self._plant_orphan(root, age_seconds=0.0)
        cache = ResultCache(root=root)
        cache.clear()
        assert not os.path.exists(fresh)
        # The prefix directory itself is gone too: clear leaves the
        # cache directory actually empty.
        assert not os.path.exists(os.path.dirname(fresh))

    def test_orphans_do_not_count_as_entries(self, tmp_path):
        root = str(tmp_path / "cache")
        self._plant_orphan(root, age_seconds=0.0)
        cache = ResultCache(root=root)
        assert cache.entry_count() == 0

    def test_sweep_tolerates_missing_root(self, tmp_path):
        cache = ResultCache(root=str(tmp_path / "never-created"))
        assert cache.orphans_swept == 0
        assert cache.sweep_orphans() == 0
