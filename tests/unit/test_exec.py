"""Unit tests for ``repro.exec`` — the parallel sweep engine.

The contract under test:

* a parallel run is *byte-identical* to a serial run of the same grid
  (compare the canonical envelopes, not just rough equality);
* the result cache hits on unchanged cells, misses on any configuration
  change, and invalidates structurally on a salt (version) change;
* a warm rerun of an unchanged grid executes zero workloads;
* tracing runs refuse untraced cache entries, and traced envelopes
  merge back with contiguous sequence numbers.
"""

from __future__ import annotations

import json

import pytest

from repro.exec import ResultCache, SweepCell, SweepEngine, run_workload_cell
from repro.exec.engine import execute_cell_payload, resolve_runner
from repro.exec.serialize import (
    cell_seed,
    decode_cell,
    decode_envelope,
    encode_cell,
    encode_envelope,
)
from repro.storage.device import CostModel
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.runner import WorkloadResult, run_workload
from repro.workloads.spec import WorkloadSpec

SPEC = WorkloadSpec(
    point_queries=0.4,
    inserts=0.3,
    updates=0.2,
    deletes=0.1,
    operations=120,
    initial_records=400,
)

METHODS = ["btree", "lsm", "hash-index", "sorted-column"]


def _cells(spec=SPEC, methods=METHODS):
    return [SweepCell.make(name, spec, block_bytes=256) for name in methods]


class TestCellSerialization:
    def test_cell_round_trips(self):
        cell = SweepCell.make(
            "lsm",
            SPEC,
            label="lsm@tuned",
            block_bytes=512,
            cost_model=CostModel.disk(),
            overrides=dict(memtable_records=64, size_ratio=3),
            params=dict(n=1024),
        )
        assert decode_cell(encode_cell(cell)) == cell

    def test_encoding_is_canonical(self):
        a = SweepCell.make("btree", SPEC, overrides=dict(b=2, a=1))
        b = SweepCell.make("btree", SPEC, overrides=dict(a=1, b=2))
        assert encode_cell(a) == encode_cell(b)

    def test_different_cells_encode_differently(self):
        base = SweepCell.make("btree", SPEC)
        assert encode_cell(base) != encode_cell(SweepCell.make("lsm", SPEC))
        assert encode_cell(base) != encode_cell(
            SweepCell.make("btree", SPEC, block_bytes=512)
        )

    def test_seed_depends_only_on_the_cell(self):
        payload = encode_cell(SweepCell.make("btree", SPEC))
        assert cell_seed(payload, "s") == cell_seed(payload, "s")
        assert cell_seed(payload, "s") != cell_seed(payload, "t")

    def test_workload_result_round_trips(self):
        result = run_workload_cell(SweepCell.make("btree", SPEC, block_bytes=256))
        envelope = encode_envelope(result, None)
        decoded = decode_envelope(envelope)["result"]
        assert isinstance(decoded, WorkloadResult)
        assert decoded == result
        # And re-encoding the decoded result is byte-stable.
        assert encode_envelope(decoded, None) == envelope


class TestRunnerResolution:
    def test_resolves_the_default_runner(self):
        assert resolve_runner("repro.exec.engine:run_workload_cell") is run_workload_cell

    def test_malformed_reference_rejected(self):
        with pytest.raises(ValueError):
            resolve_runner("no_colon_here")

    def test_missing_function_rejected(self):
        with pytest.raises(AttributeError):
            resolve_runner("repro.exec.engine:not_a_runner")


class TestSerialParallelEquivalence:
    def test_parallel_results_byte_identical_to_serial(self):
        cells = _cells()
        serial = SweepEngine(jobs=1).run(cells)
        parallel = SweepEngine(jobs=4).run(cells)
        serial_bytes = [encode_envelope(r, None) for r in serial.results]
        parallel_bytes = [encode_envelope(r, None) for r in parallel.results]
        assert serial_bytes == parallel_bytes

    def test_results_come_back_in_cell_order(self):
        outcome = SweepEngine(jobs=4).run(_cells())
        assert [r.method_name for r in outcome.results] == METHODS

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            SweepEngine(jobs=0)

    def test_by_label_maps_results(self):
        outcome = SweepEngine(jobs=1).run(_cells())
        mapping = outcome.by_label()
        assert set(mapping) == set(METHODS)
        assert mapping["btree"].method_name == "btree"

    def test_by_label_rejects_duplicates(self):
        cells = [SweepCell.make("btree", SPEC), SweepCell.make("btree", SPEC)]
        outcome = SweepEngine(jobs=1).run(cells)
        with pytest.raises(ValueError):
            outcome.by_label()


class TestResultCache:
    def test_warm_rerun_executes_nothing(self, tmp_path):
        cache = ResultCache(root=str(tmp_path / "cache"))
        cells = _cells()
        cold = SweepEngine(jobs=1, cache=cache).run(cells)
        assert cold.executed_cells == len(cells)
        assert cold.cached_cells == 0
        warm = SweepEngine(jobs=1, cache=cache).run(cells)
        assert warm.executed_cells == 0
        assert warm.cached_cells == len(cells)
        assert [encode_envelope(r, None) for r in warm.results] == [
            encode_envelope(r, None) for r in cold.results
        ]

    def test_parallel_warm_rerun_also_hits(self, tmp_path):
        cache = ResultCache(root=str(tmp_path / "cache"))
        SweepEngine(jobs=1, cache=cache).run(_cells())
        warm = SweepEngine(jobs=4, cache=cache).run(_cells())
        assert warm.executed_cells == 0

    def test_changed_cell_misses(self, tmp_path):
        cache = ResultCache(root=str(tmp_path / "cache"))
        SweepEngine(jobs=1, cache=cache).run(_cells())
        changed = _cells(
            spec=SPEC.scaled(initial_records=SPEC.initial_records, operations=121)
        )
        outcome = SweepEngine(jobs=1, cache=cache).run(changed)
        assert outcome.executed_cells == len(changed)

    def test_stale_salt_invalidates(self, tmp_path):
        root = str(tmp_path / "cache")
        SweepEngine(jobs=1, cache=ResultCache(root=root, salt="v1")).run(_cells())
        outcome = SweepEngine(
            jobs=1, cache=ResultCache(root=root, salt="v2")
        ).run(_cells())
        assert outcome.executed_cells == len(METHODS)

    def test_salt_defaults_to_library_version(self, tmp_path):
        import repro

        cache = ResultCache(root=str(tmp_path / "cache"))
        assert cache.salt == repro.__version__

    def test_entry_count_and_clear(self, tmp_path):
        cache = ResultCache(root=str(tmp_path / "cache"))
        SweepEngine(jobs=1, cache=cache).run(_cells())
        assert cache.entry_count() == len(METHODS)
        assert cache.clear() == len(METHODS)
        assert cache.entry_count() == 0

    def test_hit_and_miss_accounting(self, tmp_path):
        cache = ResultCache(root=str(tmp_path / "cache"))
        cells = _cells()
        SweepEngine(jobs=1, cache=cache).run(cells)
        assert cache.misses == len(cells)
        SweepEngine(jobs=1, cache=cache).run(cells)
        assert cache.hits == len(cells)

    def test_no_cache_always_executes(self, tmp_path):
        engine = SweepEngine(jobs=1)
        first = engine.run(_cells())
        second = engine.run(_cells())
        assert first.executed_cells == second.executed_cells == len(METHODS)


class TestTracing:
    def test_traced_run_merges_events_contiguously(self):
        outcome = SweepEngine(jobs=2, collect_events=True).run(_cells())
        events = outcome.events
        assert events, "traced sweep produced no events"
        assert [event.seq for event in events] == list(range(len(events)))
        assert {event.source for event in events} == set(METHODS)

    def test_traced_run_matches_serial_traced_run(self):
        serial = SweepEngine(jobs=1, collect_events=True).run(_cells())
        parallel = SweepEngine(jobs=4, collect_events=True).run(_cells())
        assert serial.events == parallel.events

    def test_traced_events_carry_span_stamps(self):
        """Workers run inside span_collection, so every device event in
        the merged stream is stamped with its op-root span path."""
        outcome = SweepEngine(jobs=2, collect_events=True).run(_cells())
        spans = {event.span for event in outcome.events}
        assert any(span.startswith("op.") for span in spans), spans
        # bulk_load happens inside a span too — nothing before the first
        # operation leaks out unstamped.
        assert "op.bulk_load" in {s.split("/")[0] for s in spans if s}

    def test_cached_replay_preserves_span_stamps(self, tmp_path):
        cache = ResultCache(root=str(tmp_path / "cache"))
        cold = SweepEngine(jobs=1, cache=cache, collect_events=True).run(_cells())
        warm = SweepEngine(jobs=1, cache=cache, collect_events=True).run(_cells())
        assert warm.executed_cells == 0
        assert [e.span for e in warm.events] == [e.span for e in cold.events]

    def test_untraced_cache_entry_does_not_satisfy_traced_run(self, tmp_path):
        cache = ResultCache(root=str(tmp_path / "cache"))
        SweepEngine(jobs=1, cache=cache).run(_cells())
        traced = SweepEngine(jobs=1, cache=cache, collect_events=True).run(_cells())
        assert traced.executed_cells == len(METHODS)
        # The traced envelopes replaced the entries: a traced rerun hits.
        warm = SweepEngine(jobs=1, cache=cache, collect_events=True).run(_cells())
        assert warm.executed_cells == 0
        assert warm.events == traced.events

    def test_untraced_run_accepts_traced_entry(self, tmp_path):
        cache = ResultCache(root=str(tmp_path / "cache"))
        SweepEngine(jobs=1, cache=cache, collect_events=True).run(_cells())
        outcome = SweepEngine(jobs=1, cache=cache).run(_cells())
        assert outcome.executed_cells == 0
        assert outcome.events is None


class TestCustomRunners:
    def test_json_runner_round_trips(self, tmp_path):
        cell = SweepCell.make(
            "btree",
            SPEC,
            params=dict(answer=42),
            runner="tests.unit.test_exec:json_cell_runner",
        )
        outcome = SweepEngine(jobs=1).run([cell])
        assert outcome.results[0] == {"method": "btree", "answer": 42}

    def test_execute_cell_payload_is_deterministic(self):
        payload = encode_cell(SweepCell.make("lsm", SPEC, block_bytes=256))
        first = execute_cell_payload((payload, False))
        second = execute_cell_payload((payload, False))
        assert first == second
        assert json.loads(first)["result"]["kind"] == "workload_result"


def json_cell_runner(cell, tracer=None):
    """Runner used by TestCustomRunners (must be module-level)."""
    return {"method": cell.method, "answer": cell.param_kwargs()["answer"]}


class TestConsumedGenerator:
    def test_run_workload_rejects_consumed_generator(self):
        from repro.core.registry import create_method

        spec = WorkloadSpec(point_queries=1.0, operations=20, initial_records=50)
        generator = WorkloadGenerator(spec)
        run_workload(create_method("btree"), spec, generator=generator)
        with pytest.raises(ValueError, match="already produced"):
            run_workload(create_method("btree"), spec, generator=generator)

    def test_fresh_generator_accepted(self):
        from repro.core.registry import create_method

        spec = WorkloadSpec(point_queries=1.0, operations=20, initial_records=50)
        result = run_workload(
            create_method("btree"), spec, generator=WorkloadGenerator(spec)
        )
        assert result.final_records > 0

    def test_consumed_flag_set_when_stream_is_handed_out(self):
        spec = WorkloadSpec(point_queries=1.0, operations=5, initial_records=10)
        generator = WorkloadGenerator(spec)
        assert not generator.consumed
        generator.initial_data()
        assert not generator.consumed
        generator.operations()
        assert generator.consumed
