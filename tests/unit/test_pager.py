"""Unit tests for the buffer pool and its eviction policies."""

from __future__ import annotations

import pytest

from repro.storage.device import SimulatedDevice
from repro.storage.pager import BufferPool, ClockPolicy, LRUPolicy


@pytest.fixture
def backing():
    return SimulatedDevice(block_bytes=64, name="backing")


def _seed(device, n):
    blocks = []
    for i in range(n):
        block = device.allocate()
        device.write(block, f"payload-{i}")
        blocks.append(block)
    return blocks


class TestReadCaching:
    def test_second_read_is_a_hit(self, backing):
        (block,) = _seed(backing, 1)
        pool = BufferPool(backing, capacity_blocks=4)
        backing.reset_counters()
        pool.read(block)
        pool.read(block)
        assert backing.counters.reads == 1
        assert pool.stats.hits == 1
        assert pool.stats.misses == 1

    def test_capacity_zero_is_passthrough(self, backing):
        (block,) = _seed(backing, 1)
        pool = BufferPool(backing, capacity_blocks=0)
        backing.reset_counters()
        pool.read(block)
        pool.read(block)
        assert backing.counters.reads == 2
        assert pool.cached_blocks == 0

    def test_eviction_at_capacity(self, backing):
        blocks = _seed(backing, 3)
        pool = BufferPool(backing, capacity_blocks=2)
        for block in blocks:
            pool.read(block)
        assert pool.cached_blocks == 2
        assert pool.stats.evictions == 1

    def test_lru_evicts_least_recent(self, backing):
        b0, b1, b2 = _seed(backing, 3)
        pool = BufferPool(backing, capacity_blocks=2, policy=LRUPolicy())
        pool.read(b0)
        pool.read(b1)
        pool.read(b0)  # refresh b0; b1 is now LRU
        pool.read(b2)  # evicts b1
        backing.reset_counters()
        pool.read(b0)
        assert backing.counters.reads == 0  # b0 still cached
        pool.read(b1)
        assert backing.counters.reads == 1  # b1 was evicted

    def test_negative_capacity_rejected(self, backing):
        with pytest.raises(ValueError):
            BufferPool(backing, capacity_blocks=-1)


class TestWriteBack:
    def test_write_deferred_until_flush(self, backing):
        (block,) = _seed(backing, 1)
        pool = BufferPool(backing, capacity_blocks=2)
        backing.reset_counters()
        pool.write(block, "new-payload")
        assert backing.counters.writes == 0
        pool.flush()
        assert backing.counters.writes == 1
        assert backing.read(block) == "new-payload"

    def test_dirty_eviction_writes_back(self, backing):
        b0, b1, b2 = _seed(backing, 3)
        pool = BufferPool(backing, capacity_blocks=1)
        pool.write(b0, "dirty-0")
        backing.reset_counters()
        pool.read(b1)  # evicts dirty b0
        assert backing.counters.writes == 1
        assert backing.peek(b0) == "dirty-0"

    def test_flush_keeps_frames_clean(self, backing):
        (block,) = _seed(backing, 1)
        pool = BufferPool(backing, capacity_blocks=2)
        pool.write(block, "x")
        pool.flush()
        backing.reset_counters()
        pool.flush()  # nothing dirty anymore
        assert backing.counters.writes == 0

    def test_capacity_zero_write_passthrough(self, backing):
        (block,) = _seed(backing, 1)
        pool = BufferPool(backing, capacity_blocks=0)
        backing.reset_counters()
        pool.write(block, "direct")
        assert backing.counters.writes == 1

    def test_read_after_cached_write(self, backing):
        (block,) = _seed(backing, 1)
        pool = BufferPool(backing, capacity_blocks=2)
        pool.write(block, "cached")
        assert pool.read(block) == "cached"

    def test_invalidate_drops_without_writeback(self, backing):
        (block,) = _seed(backing, 1)
        pool = BufferPool(backing, capacity_blocks=2)
        pool.write(block, "doomed")
        pool.invalidate(block)
        backing.reset_counters()
        pool.flush()
        assert backing.counters.writes == 0


class TestClockPolicy:
    def test_clock_gives_second_chance(self, backing):
        b0, b1, b2 = _seed(backing, 3)
        pool = BufferPool(backing, capacity_blocks=2, policy=ClockPolicy())
        pool.read(b0)
        pool.read(b1)
        pool.read(b0)  # reference b0 again
        pool.read(b2)  # clock should prefer evicting b1 over b0
        backing.reset_counters()
        pool.read(b0)
        # b0 may or may not survive depending on hand position, but the
        # pool must stay within capacity and stay correct.
        assert pool.cached_blocks <= 2
        assert pool.read(b1) == "payload-1"

    def test_hit_rate(self, backing):
        (block,) = _seed(backing, 1)
        pool = BufferPool(backing, capacity_blocks=1)
        pool.read(block)
        pool.read(block)
        pool.read(block)
        assert pool.stats.hit_rate == pytest.approx(2 / 3)

    def test_hit_rate_empty(self, backing):
        pool = BufferPool(backing, capacity_blocks=1)
        assert pool.stats.hit_rate == 0.0


class TestCachedBytes:
    def test_cached_bytes_tracks_frames(self, backing):
        blocks = _seed(backing, 3)
        pool = BufferPool(backing, capacity_blocks=8)
        for block in blocks:
            pool.read(block)
        assert pool.cached_bytes == 3 * backing.block_bytes


class TestPeekAndDirtyIteration:
    def test_peek_serves_dirty_frame_without_io(self, backing):
        (block,) = _seed(backing, 1)
        pool = BufferPool(backing, capacity_blocks=4)
        pool.write(block, "newer", used_bytes=8)
        backing.reset_counters()
        assert pool.peek(block) == "newer"
        assert backing.counters.reads == 0
        assert pool.stats.hits + pool.stats.misses == 1  # only the write

    def test_peek_falls_through_to_device(self, backing):
        (block,) = _seed(backing, 1)
        pool = BufferPool(backing, capacity_blocks=4)
        assert pool.peek(block) == "payload-0"

    def test_iter_dirty_lists_unflushed_frames_only(self, backing):
        first, second = _seed(backing, 2)
        pool = BufferPool(backing, capacity_blocks=4)
        pool.read(first)  # clean frame
        pool.write(second, "dirty", used_bytes=16)
        assert list(pool.iter_dirty()) == [(second, 16)]
        pool.flush()
        assert list(pool.iter_dirty()) == []


class TestBlockStoreSurface:
    """The pool is itself a BlockStore: pools stack on pools."""

    def test_pool_satisfies_the_protocol(self, backing):
        from repro.storage.store import BlockStore

        pool = BufferPool(backing, capacity_blocks=4)
        assert isinstance(pool, BlockStore)
        assert isinstance(backing, BlockStore)
        assert pool.block_bytes == backing.block_bytes

    def test_pool_over_pool_chains_misses(self, backing):
        (block,) = _seed(backing, 1)
        lower = BufferPool(backing, capacity_blocks=8)
        upper = BufferPool(lower, capacity_blocks=2)
        backing.reset_counters()
        assert upper.read(block) == "payload-0"
        assert backing.counters.reads == 1
        assert lower.stats.misses == 1 and upper.stats.misses == 1
        upper.invalidate(block)
        # Still cached in the lower pool: no backing I/O on the re-read.
        assert upper.read(block) == "payload-0"
        assert backing.counters.reads == 1
        assert lower.stats.hits == 1

    def test_dirty_eviction_lands_in_the_lower_pool(self, backing):
        b0, b1 = _seed(backing, 2)
        lower = BufferPool(backing, capacity_blocks=8)
        upper = BufferPool(lower, capacity_blocks=1)
        backing.reset_counters()
        upper.write(b0, "newer", used_bytes=8)
        upper.read(b1)  # evicts dirty b0 into the lower pool
        assert backing.counters.writes == 0
        assert lower.peek(b0) == "newer"
        assert upper.stats.write_backs == 1

    def test_used_bytes_of_prefers_the_cached_frame(self, backing):
        (block,) = _seed(backing, 1)
        pool = BufferPool(backing, capacity_blocks=2)
        pool.write(block, "x", used_bytes=48)
        assert pool.used_bytes_of(block) == 48
        assert backing.used_bytes_of(block) == 0  # not yet flushed


class TestReadAdmissionOccupancy:
    def test_read_miss_admits_with_true_used_bytes(self, backing):
        (block,) = _seed(backing, 1)
        backing.write(block, "payload-0", used_bytes=40)
        pool = BufferPool(backing, capacity_blocks=2)
        pool.read(block)
        (frame,) = pool.iter_frames()
        assert frame.used_bytes == 40
        assert not frame.dirty

    def test_outgoing_traffic_counters(self, backing):
        b0, b1 = _seed(backing, 2)
        pool = BufferPool(backing, capacity_blocks=1)
        backing.reset_counters()
        pool.read(b0)
        pool.write(b0, "v", used_bytes=8)
        pool.read(b1)   # evicts dirty b0 -> one downstream write
        pool.flush()    # no dirty frames left dirty? b1 clean, so no-op
        assert pool.stats.demand_reads == 2
        assert pool.stats.downstream_writes == 1
        assert backing.counters.reads == 2
        assert backing.counters.writes == 1


class TestWriteThrough:
    def test_write_through_propagates_and_stays_clean(self, backing):
        (block,) = _seed(backing, 1)
        pool = BufferPool(backing, capacity_blocks=2, write_through=True)
        backing.reset_counters()
        pool.write(block, "v1", used_bytes=16)
        assert backing.counters.writes == 1
        assert backing.peek(block) == "v1"
        assert pool.dirty_blocks == 0
        assert pool.contains(block)  # still cached for fast reads
        assert pool.stats.downstream_writes == 1

    def test_write_through_hit_also_propagates(self, backing):
        (block,) = _seed(backing, 1)
        pool = BufferPool(backing, capacity_blocks=2, write_through=True)
        pool.write(block, "v1")
        backing.reset_counters()
        pool.write(block, "v2")
        assert backing.counters.writes == 1
        assert backing.peek(block) == "v2"

    def test_flush_after_write_through_is_a_noop(self, backing):
        (block,) = _seed(backing, 1)
        pool = BufferPool(backing, capacity_blocks=2, write_through=True)
        pool.write(block, "v1")
        backing.reset_counters()
        pool.flush()
        assert backing.counters.writes == 0


class TestExclusiveAdmission:
    def test_no_admit_on_read(self, backing):
        (block,) = _seed(backing, 1)
        pool = BufferPool(backing, capacity_blocks=4, admit_on_read=False)
        pool.read(block)
        assert not pool.contains(block)
        assert pool.stats.demand_reads == 1

    def test_fill_clean_installs_without_stats(self, backing):
        (block,) = _seed(backing, 1)
        pool = BufferPool(backing, capacity_blocks=4, admit_on_read=False)
        pool.fill_clean(block, "payload-0", 12)
        assert pool.contains(block)
        assert pool.stats.accesses == 0
        backing.reset_counters()
        assert pool.read(block) == "payload-0"
        assert backing.counters.reads == 0  # served by the filled frame

    def test_fill_clean_never_clobbers_a_resident_frame(self, backing):
        (block,) = _seed(backing, 1)
        pool = BufferPool(backing, capacity_blocks=4)
        pool.write(block, "dirty-newer", used_bytes=8)
        pool.fill_clean(block, "stale", 0)
        assert pool.peek(block) == "dirty-newer"
        assert pool.dirty_blocks == 1

    def test_clean_victims_are_offered_to_the_victim_store(self, backing):
        b0, b1 = _seed(backing, 2)
        lower = BufferPool(backing, capacity_blocks=8, admit_on_read=False)

        class _Sink:
            def __init__(self):
                self.offered = []

            def accept_victim(self, block_id, payload, used_bytes):
                self.offered.append((block_id, payload, used_bytes))
                lower.fill_clean(block_id, payload, used_bytes)

        sink = _Sink()
        upper = BufferPool(backing, capacity_blocks=1)
        upper.victim_store = sink
        upper.read(b0)
        upper.read(b1)  # evicts clean b0 -> offered, not written back
        assert sink.offered and sink.offered[0][0] == b0
        assert lower.contains(b0)
        assert upper.stats.write_backs == 0
