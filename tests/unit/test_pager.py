"""Unit tests for the buffer pool and its eviction policies."""

from __future__ import annotations

import pytest

from repro.storage.device import SimulatedDevice
from repro.storage.pager import BufferPool, ClockPolicy, LRUPolicy


@pytest.fixture
def backing():
    return SimulatedDevice(block_bytes=64, name="backing")


def _seed(device, n):
    blocks = []
    for i in range(n):
        block = device.allocate()
        device.write(block, f"payload-{i}")
        blocks.append(block)
    return blocks


class TestReadCaching:
    def test_second_read_is_a_hit(self, backing):
        (block,) = _seed(backing, 1)
        pool = BufferPool(backing, capacity_blocks=4)
        backing.reset_counters()
        pool.read(block)
        pool.read(block)
        assert backing.counters.reads == 1
        assert pool.stats.hits == 1
        assert pool.stats.misses == 1

    def test_capacity_zero_is_passthrough(self, backing):
        (block,) = _seed(backing, 1)
        pool = BufferPool(backing, capacity_blocks=0)
        backing.reset_counters()
        pool.read(block)
        pool.read(block)
        assert backing.counters.reads == 2
        assert pool.cached_blocks == 0

    def test_eviction_at_capacity(self, backing):
        blocks = _seed(backing, 3)
        pool = BufferPool(backing, capacity_blocks=2)
        for block in blocks:
            pool.read(block)
        assert pool.cached_blocks == 2
        assert pool.stats.evictions == 1

    def test_lru_evicts_least_recent(self, backing):
        b0, b1, b2 = _seed(backing, 3)
        pool = BufferPool(backing, capacity_blocks=2, policy=LRUPolicy())
        pool.read(b0)
        pool.read(b1)
        pool.read(b0)  # refresh b0; b1 is now LRU
        pool.read(b2)  # evicts b1
        backing.reset_counters()
        pool.read(b0)
        assert backing.counters.reads == 0  # b0 still cached
        pool.read(b1)
        assert backing.counters.reads == 1  # b1 was evicted

    def test_negative_capacity_rejected(self, backing):
        with pytest.raises(ValueError):
            BufferPool(backing, capacity_blocks=-1)


class TestWriteBack:
    def test_write_deferred_until_flush(self, backing):
        (block,) = _seed(backing, 1)
        pool = BufferPool(backing, capacity_blocks=2)
        backing.reset_counters()
        pool.write(block, "new-payload")
        assert backing.counters.writes == 0
        pool.flush()
        assert backing.counters.writes == 1
        assert backing.read(block) == "new-payload"

    def test_dirty_eviction_writes_back(self, backing):
        b0, b1, b2 = _seed(backing, 3)
        pool = BufferPool(backing, capacity_blocks=1)
        pool.write(b0, "dirty-0")
        backing.reset_counters()
        pool.read(b1)  # evicts dirty b0
        assert backing.counters.writes == 1
        assert backing.peek(b0) == "dirty-0"

    def test_flush_keeps_frames_clean(self, backing):
        (block,) = _seed(backing, 1)
        pool = BufferPool(backing, capacity_blocks=2)
        pool.write(block, "x")
        pool.flush()
        backing.reset_counters()
        pool.flush()  # nothing dirty anymore
        assert backing.counters.writes == 0

    def test_capacity_zero_write_passthrough(self, backing):
        (block,) = _seed(backing, 1)
        pool = BufferPool(backing, capacity_blocks=0)
        backing.reset_counters()
        pool.write(block, "direct")
        assert backing.counters.writes == 1

    def test_read_after_cached_write(self, backing):
        (block,) = _seed(backing, 1)
        pool = BufferPool(backing, capacity_blocks=2)
        pool.write(block, "cached")
        assert pool.read(block) == "cached"

    def test_invalidate_drops_without_writeback(self, backing):
        (block,) = _seed(backing, 1)
        pool = BufferPool(backing, capacity_blocks=2)
        pool.write(block, "doomed")
        pool.invalidate(block)
        backing.reset_counters()
        pool.flush()
        assert backing.counters.writes == 0


class TestClockPolicy:
    def test_clock_gives_second_chance(self, backing):
        b0, b1, b2 = _seed(backing, 3)
        pool = BufferPool(backing, capacity_blocks=2, policy=ClockPolicy())
        pool.read(b0)
        pool.read(b1)
        pool.read(b0)  # reference b0 again
        pool.read(b2)  # clock should prefer evicting b1 over b0
        backing.reset_counters()
        pool.read(b0)
        # b0 may or may not survive depending on hand position, but the
        # pool must stay within capacity and stay correct.
        assert pool.cached_blocks <= 2
        assert pool.read(b1) == "payload-1"

    def test_hit_rate(self, backing):
        (block,) = _seed(backing, 1)
        pool = BufferPool(backing, capacity_blocks=1)
        pool.read(block)
        pool.read(block)
        pool.read(block)
        assert pool.stats.hit_rate == pytest.approx(2 / 3)

    def test_hit_rate_empty(self, backing):
        pool = BufferPool(backing, capacity_blocks=1)
        assert pool.stats.hit_rate == 0.0


class TestCachedBytes:
    def test_cached_bytes_tracks_frames(self, backing):
        blocks = _seed(backing, 3)
        pool = BufferPool(backing, capacity_blocks=8)
        for block in blocks:
            pool.read(block)
        assert pool.cached_bytes == 3 * backing.block_bytes


class TestPeekAndDirtyIteration:
    def test_peek_serves_dirty_frame_without_io(self, backing):
        (block,) = _seed(backing, 1)
        pool = BufferPool(backing, capacity_blocks=4)
        pool.write(block, "newer", used_bytes=8)
        backing.reset_counters()
        assert pool.peek(block) == "newer"
        assert backing.counters.reads == 0
        assert pool.stats.hits + pool.stats.misses == 1  # only the write

    def test_peek_falls_through_to_device(self, backing):
        (block,) = _seed(backing, 1)
        pool = BufferPool(backing, capacity_blocks=4)
        assert pool.peek(block) == "payload-0"

    def test_iter_dirty_lists_unflushed_frames_only(self, backing):
        first, second = _seed(backing, 2)
        pool = BufferPool(backing, capacity_blocks=4)
        pool.read(first)  # clean frame
        pool.write(second, "dirty", used_bytes=16)
        assert list(pool.iter_dirty()) == [(second, 16)]
        pool.flush()
        assert list(pool.iter_dirty()) == []
