"""The live observability substrate: windows, conservation, drift."""

from __future__ import annotations

import pytest

from repro.core.registry import create_method
from repro.core.rum import RUMAccumulator
from repro.obs.live import (
    DriftDetector,
    LiveRegistry,
    LiveSink,
    WindowedRUM,
    emit_drift_event,
    run_live_cell,
    run_live_workload,
)
from repro.obs.sinks import ListSink
from repro.obs.tracer import NULL_TRACER, RecordingTracer
from repro.storage.device import IOStats, SimulatedDevice
from repro.storage.layout import RECORD_BYTES
from repro.workloads.runner import run_workload
from repro.workloads.spec import MIXES


# ----------------------------------------------------------------------
# Windowing core (exercised through LiveRegistry)
# ----------------------------------------------------------------------
def test_window_ring_rejects_bad_parameters():
    with pytest.raises(ValueError):
        LiveRegistry(0.0)
    with pytest.raises(ValueError):
        LiveRegistry(-5.0)
    with pytest.raises(ValueError):
        LiveRegistry(10.0, ring_size=0)


def test_samples_land_in_floor_of_time_over_width():
    registry = LiveRegistry(10.0)
    registry.count("ops", now=0.0)
    registry.count("ops", now=9.9)
    registry.count("ops", now=10.0)  # boundary opens window 1
    registry.count("ops", now=25.0)
    frames = registry.snapshot()
    assert [frame["window"] for frame in frames] == [0, 1, 2]
    assert [frame["counters"]["ops"] for frame in frames] == [2, 1, 1]
    assert [frame["start"] for frame in frames] == [0.0, 10.0, 20.0]


def test_equal_or_earlier_time_stays_in_the_open_window():
    # Simulated time is monotone over a run; the ring clamps the rare
    # boundary case (an index at or before the open window's) into the
    # open window rather than rolling backwards.
    registry = LiveRegistry(10.0)
    registry.count("ops", now=25.0)
    registry.count("ops", now=3.0)
    frames = registry.snapshot()
    assert len(frames) == 1
    assert frames[0]["window"] == 2
    assert frames[0]["counters"]["ops"] == 2


def test_registry_eviction_folds_counters_exactly():
    registry = LiveRegistry(1.0, ring_size=2)
    for step in range(10):
        registry.count("ops", delta=step, now=float(step))
    # Ring holds 2 closed + 1 open; 7 windows folded out.
    assert registry.evicted_windows == 7
    assert len(registry.snapshot()) == 3
    assert registry.counter_total("ops") == sum(range(10))
    assert registry.counter_total("never-seen") == 0


def test_registry_gauges_keep_last_and_max():
    registry = LiveRegistry(100.0)
    registry.gauge("depth", 3.0, now=1.0)
    registry.gauge("depth", 9.0, now=2.0)
    registry.gauge("depth", 4.0, now=3.0)
    frame = registry.snapshot()[0]
    assert frame["gauges"]["depth"] == {"last": 4.0, "max": 9.0}


def test_registry_histograms_use_nearest_rank_percentiles():
    registry = LiveRegistry(100.0)
    for value in (1.0, 2.0, 3.0, 4.0, 5.0):
        registry.observe("latency", value, now=1.0)
    stats = registry.snapshot()[0]["histograms"]["latency"]
    assert stats["count"] == 5
    assert stats["p50"] == 3.0  # 3rd smallest of five — the ceil fix
    assert stats["p99"] == 5.0
    assert stats["max"] == 5.0


def test_registry_advance_rolls_without_recording():
    registry = LiveRegistry(10.0)
    registry.count("ops", now=1.0)
    registry.advance(35.0)
    frames = registry.snapshot()
    assert [frame["window"] for frame in frames] == [0, 3]
    assert frames[1]["counters"] == {}


# ----------------------------------------------------------------------
# WindowedRUM
# ----------------------------------------------------------------------
def test_observe_op_buckets_reads_and_updates():
    live = WindowedRUM(10.0)
    live.observe_op(
        "point_query", True, IOStats(read_bytes=4096, simulated_time=5.0),
        units=1, now=5.0,
    )
    live.observe_op(
        "insert", False, IOStats(write_bytes=8192, simulated_time=7.0),
        units=1, now=12.0,
    )
    frames = live.frames()
    assert [frame["window"] for frame in frames] == [0, 1]
    read_frame, write_frame = frames
    assert read_frame["read_ops"] == 1
    assert read_frame["read_bytes"] == 4096
    assert read_frame["retrieved_bytes"] == RECORD_BYTES
    assert read_frame["ro"] == 4096 / RECORD_BYTES
    assert read_frame["uo"] == 1.0  # no updates in the window
    assert write_frame["update_ops"] == 1
    assert write_frame["write_bytes"] == 8192
    assert write_frame["uo"] == 8192 / RECORD_BYTES
    assert write_frame["ops"] == {"insert": 1}


def test_flush_charges_write_and_flush_read_bytes():
    live = WindowedRUM(10.0)
    live.observe_op(
        "update", False, IOStats(write_bytes=4096, simulated_time=1.0),
        units=1, now=1.0,
    )
    live.observe_flush(
        IOStats(read_bytes=4096, write_bytes=8192, simulated_time=2.0),
        now=3.0,
    )
    frame = live.frames()[0]
    assert frame["write_bytes"] == 4096 + 8192
    assert frame["flush_read_bytes"] == 4096
    assert frame["ops"]["flush"] == 1
    # Flush bytes charge UO's numerator but add no updated records.
    assert frame["uo"] == (4096 + 8192 + 4096) / RECORD_BYTES


def test_windowed_totals_survive_ring_eviction():
    live = WindowedRUM(1.0, ring_size=1)
    for step in range(20):
        live.observe_op(
            "insert", False,
            IOStats(write_bytes=100, simulated_time=1.0),
            units=1, now=float(step),
        )
    assert live.evicted_windows == 18
    totals = live.totals()
    assert totals["write_bytes"] == 2000
    assert totals["updated_bytes"] == 20 * RECORD_BYTES
    assert totals["update_ops"] == 20


def test_windowed_rum_conserves_against_the_accumulator():
    """The contract: window sums == whole-run accumulator, exactly."""
    for batch_size in (1, 7, 256):
        method = create_method(
            "btree", device=SimulatedDevice(block_bytes=4096)
        )
        live = WindowedRUM(25.0)
        accumulator = RUMAccumulator()
        run_workload(
            method,
            MIXES["balanced"].scaled(300, 240),
            accumulator=accumulator,
            batch_size=batch_size,
            live=live,
        )
        totals = live.totals()
        for name in WindowedRUM.INT_FIELDS:
            assert totals[name] == getattr(accumulator, name), (
                f"{name} diverged at batch_size={batch_size}"
            )
        assert len(live.frames()) > 1  # actually windowed, not one bucket


def test_consume_event_attributes_phase_bytes_by_event_clock():
    live = WindowedRUM(10.0)
    sink = LiveSink(live)
    tracer = RecordingTracer(sink)
    # Two events: costs 6 then 6 — the second crosses into window 1.
    tracer.emit(source="d", op="read", block_id=1, cost=6.0, nbytes=256)
    tracer.emit(source="d", op="read", block_id=2, cost=6.0, nbytes=512)
    frames = live.frames()
    assert [frame["window"] for frame in frames] == [0, 1]
    assert sum(frames[0]["phases"].values()) == 256
    assert sum(frames[1]["phases"].values()) == 512


def test_live_sink_chains_to_another_sink():
    live = WindowedRUM(10.0)
    downstream = ListSink()
    tracer = RecordingTracer(LiveSink(live, chain=downstream))
    tracer.emit(source="d", op="read", block_id=1, cost=1.0, nbytes=64)
    assert len(downstream.events) == 1
    assert sum(live.frames()[0]["phases"].values()) == 64


# ----------------------------------------------------------------------
# DriftDetector
# ----------------------------------------------------------------------
def test_drift_detector_classifies_mixes():
    detector = DriftDetector()
    assert detector.classify({"point_query": 9, "insert": 1}) == "read-heavy"
    assert detector.classify({"insert": 6, "point_query": 4}) == "update-heavy"
    assert detector.classify({"range_query": 3, "insert": 7}) == "scan-heavy"
    assert detector.classify({"point_query": 5, "insert": 4,
                              "update": 0}) == "mixed"
    # No measured ops: hold the current state rather than guessing.
    assert detector.classify({"flush": 1}) == "mixed"


def test_drift_detector_requires_consecutive_windows():
    detector = DriftDetector(hysteresis=2)
    update_heavy = {"insert": 10}
    read_heavy = {"point_query": 10}
    assert detector.observe(update_heavy, 0) is None  # streak 1
    assert detector.observe(read_heavy, 1) is None    # streak broken
    assert detector.observe(update_heavy, 2) is None  # streak 1 again
    assert detector.observe(update_heavy, 3) == "update-heavy"
    assert detector.state == "update-heavy"
    assert detector.transitions == [(3, "mixed", "update-heavy")]
    # Matching the committed state resets any pending streak.
    assert detector.observe(update_heavy, 4) is None
    assert detector.transitions == [(3, "mixed", "update-heavy")]


def test_drift_detector_emits_trace_events():
    sink = ListSink()
    detector = DriftDetector(hysteresis=1, tracer=RecordingTracer(sink))
    detector.observe({"insert": 10}, 7)
    assert len(sink.events) == 1
    event = sink.events[0]
    assert event.op == "drift"
    assert event.source == "drift"
    assert event.block_id == 7
    assert event.kind == "mixed->update-heavy"


def test_drift_detector_validates_parameters():
    with pytest.raises(ValueError):
        DriftDetector(hysteresis=0)
    with pytest.raises(ValueError):
        DriftDetector(initial_state="bursty")


def test_emit_drift_event_respects_disabled_tracer():
    # NULL_TRACER.enabled is False; the helper must not call emit.
    emit_drift_event(NULL_TRACER, 0, "mixed", "read-heavy")


# ----------------------------------------------------------------------
# run_live_workload / run_live_cell
# ----------------------------------------------------------------------
def test_run_live_workload_reports_conserved_frames():
    method = create_method("btree", device=SimulatedDevice(block_bytes=4096))
    result = run_live_workload(
        method, MIXES["balanced"].scaled(300, 240), width=100.0
    )
    assert result["conserved"] is True
    assert result["totals"] == result["run_totals"]
    assert result["method"] == "btree"
    assert len(result["frames"]) >= 1
    for frame in result["frames"]:
        assert frame["drift"] in (
            "read-heavy", "update-heavy", "scan-heavy", "mixed"
        )
    # Frame integers re-sum to the reported totals (frames are the
    # same windows totals() folded).
    for name in WindowedRUM.INT_FIELDS:
        assert sum(f[name] for f in result["frames"]) == result["totals"][name]


def test_run_live_cell_refuses_engine_tracing():
    from repro.exec.cells import SweepCell

    cell = SweepCell.make(
        "btree", MIXES["balanced"].scaled(100, 50),
        runner="repro.obs.live:run_live_cell",
    )
    with pytest.raises(ValueError):
        run_live_cell(cell, tracer=RecordingTracer(ListSink()))


def test_run_live_cell_honours_window_params():
    from repro.exec.cells import SweepCell

    cell = SweepCell.make(
        "btree",
        MIXES["balanced"].scaled(200, 100),
        params={"window": 40.0, "ring": 4, "hysteresis": 1},
        runner="repro.obs.live:run_live_cell",
    )
    result = run_live_cell(cell)
    assert result["window"] == 40.0
    assert result["conserved"] is True
    # ring=4 closed + 1 open bounds the retained frames.
    assert len(result["frames"]) <= 5
