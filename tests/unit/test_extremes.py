"""Unit tests for the Prop 1-3 extreme access methods.

These tests verify the *exact* overhead constants the paper derives:
min RO = 1.0 forces UO = 2.0 and unbounded MO (Prop 1); min UO = 1.0
forces growing RO and MO (Prop 2); min MO = 1.0 forces RO = O(N) while
keeping UO = 1.0 (Prop 3).
"""

from __future__ import annotations

import pytest

from repro.methods.extremes import (
    AppendOnlyLog,
    DenseArray,
    MagicArray,
    record_grain_device,
)
from repro.storage.device import SimulatedDevice
from repro.storage.layout import RECORD_BYTES


class TestMagicArrayProp1:
    def test_point_read_is_exactly_one_record(self):
        magic = MagicArray()
        magic.insert(17)
        before = magic.device.snapshot()
        assert magic.contains(17)
        io = magic.device.stats_since(before)
        # RO = bytes read / bytes wanted = 1.0 exactly.
        assert io.read_bytes == RECORD_BYTES

    def test_miss_within_domain_is_one_read(self):
        magic = MagicArray()
        magic.insert(17)
        before = magic.device.snapshot()
        assert not magic.contains(5)
        io = magic.device.stats_since(before)
        assert io.read_bytes == RECORD_BYTES

    def test_miss_beyond_domain_is_free(self):
        magic = MagicArray()
        magic.insert(3)
        before = magic.device.snapshot()
        assert not magic.contains(1000)
        assert magic.device.stats_since(before).read_bytes == 0

    def test_change_writes_exactly_two_records(self):
        magic = MagicArray()
        magic.insert(5)
        before = magic.device.snapshot()
        magic.change(5, 9)
        io = magic.device.stats_since(before)
        # UO = 2.0: empty the old block, fill the new one.
        assert io.write_bytes == 2 * RECORD_BYTES

    def test_memory_overhead_is_domain_size(self):
        magic = MagicArray()
        magic.insert(1)
        magic.insert(17)
        # Space = 18 slots (0..17) for 2 live values.
        assert magic.space_bytes() == 18 * RECORD_BYTES
        assert magic.memory_overhead() == pytest.approx(9.0)

    def test_memory_overhead_unbounded_in_max_value(self):
        small, large = MagicArray(), MagicArray()
        small.insert(10)
        large.insert(10_000)
        assert large.memory_overhead() > 100 * small.memory_overhead()

    def test_delete(self):
        magic = MagicArray()
        magic.insert(7)
        magic.delete(7)
        assert not magic.contains(7)
        with pytest.raises(KeyError):
            magic.delete(7)

    def test_change_missing_raises(self):
        magic = MagicArray()
        with pytest.raises(KeyError):
            magic.change(1, 2)

    def test_negative_values_rejected(self):
        magic = MagicArray()
        with pytest.raises(ValueError):
            magic.insert(-1)
        with pytest.raises(ValueError):
            magic.contains(-1)

    def test_requires_record_grain_device(self):
        with pytest.raises(ValueError):
            MagicArray(SimulatedDevice(block_bytes=4096))

    def test_live_count(self):
        magic = MagicArray()
        magic.insert(3)
        magic.insert(5)
        magic.delete(3)
        assert magic.live_values == 1


class TestAppendLogProp2:
    def test_every_write_is_exactly_one_record(self):
        log = AppendOnlyLog()
        log.bulk_load([(1, 10), (2, 20)])
        for mutate in (
            lambda: log.insert(3, 30),
            lambda: log.update(1, 11),
            lambda: log.delete(2),
        ):
            before = log.device.snapshot()
            mutate()
            io = log.device.stats_since(before)
            assert io.write_bytes == RECORD_BYTES  # UO = 1.0

    def test_read_cost_grows_with_updates(self):
        log = AppendOnlyLog()
        log.bulk_load([(1, 10)])

        def read_cost():
            before = log.device.snapshot()
            log.get(1)
            return log.device.stats_since(before).read_bytes

        cost_before = read_cost()
        for i in range(50):
            log.insert(100 + i, i)
        assert read_cost() > cost_before  # RO grows without bound

    def test_space_grows_with_updates(self):
        log = AppendOnlyLog()
        log.bulk_load([(1, 10)])
        space_before = log.space_bytes()
        for _ in range(20):
            log.update(1, 99)
        # 20 updates to the same key still cost 20 appended records.
        assert log.space_bytes() == space_before + 20 * RECORD_BYTES
        assert len(log) == 1  # logical size unchanged

    def test_newest_version_wins(self):
        log = AppendOnlyLog()
        log.bulk_load([(1, 10)])
        log.update(1, 11)
        log.update(1, 12)
        assert log.get(1) == 12

    def test_tombstone_hides_key(self):
        log = AppendOnlyLog()
        log.bulk_load([(1, 10), (2, 20)])
        log.delete(1)
        assert log.get(1) is None
        assert log.range_query(0, 10) == [(2, 20)]

    def test_log_entries_monotone(self):
        log = AppendOnlyLog()
        log.bulk_load([(1, 10)])
        entries = log.log_entries
        log.update(1, 11)
        log.delete(1)
        assert log.log_entries == entries + 2


class TestDenseArrayProp3:
    def test_memory_overhead_exactly_one(self):
        dense = DenseArray()
        dense.bulk_load([(i, i) for i in range(50)])
        assert dense.space_bytes() == dense.base_bytes()
        assert dense.stats().space_amplification == 1.0

    def test_density_survives_deletes(self):
        dense = DenseArray()
        dense.bulk_load([(i, i) for i in range(50)])
        for key in (0, 10, 20, 30):
            dense.delete(key)
        assert dense.space_bytes() == dense.base_bytes()

    def test_update_writes_exactly_one_record(self):
        dense = DenseArray()
        dense.bulk_load([(i, i) for i in range(20)])
        before = dense.device.snapshot()
        dense.update(5, 99)
        io = dense.device.stats_since(before)
        assert io.write_bytes == RECORD_BYTES  # UO = 1.0

    def test_read_cost_linear_in_n(self):
        costs = {}
        for n in (20, 200):
            dense = DenseArray()
            dense.bulk_load([(i, i) for i in range(n)])
            before = dense.device.snapshot()
            dense.get(n - 1)  # worst case: last element
            costs[n] = dense.device.stats_since(before).read_bytes
        assert costs[200] == pytest.approx(10 * costs[20], rel=0.05)

    def test_correctness_basics(self):
        dense = DenseArray()
        dense.bulk_load([(1, 10), (2, 20), (3, 30)])
        assert dense.get(2) == 20
        dense.delete(2)
        assert dense.get(2) is None
        assert sorted(dense.range_query(0, 10)) == [(1, 10), (3, 30)]


class TestRecordGrainDevice:
    def test_block_is_one_record(self):
        device = record_grain_device("test")
        assert device.block_bytes == RECORD_BYTES
