"""Unit tests for Bloom filters, count-min sketch, quotient filter and
zone synopses — the space-optimized building blocks."""

from __future__ import annotations

import pytest

from repro.filters.bloom import (
    BloomFilter,
    CountingBloomFilter,
    optimal_bits,
    optimal_hashes,
)
from repro.filters.countmin import CountMinSketch
from repro.filters.quotient import QuotientFilter
from repro.filters.zonefilter import ZoneEntry, ZoneSynopsis


class TestBloomSizing:
    def test_optimal_bits_grow_with_items(self):
        assert optimal_bits(1000, 0.01) > optimal_bits(100, 0.01)

    def test_optimal_bits_grow_with_precision(self):
        assert optimal_bits(1000, 0.001) > optimal_bits(1000, 0.01)

    def test_invalid_fpr_rejected(self):
        with pytest.raises(ValueError):
            optimal_bits(10, 0.0)
        with pytest.raises(ValueError):
            optimal_bits(10, 1.0)

    def test_zero_items_gets_minimum(self):
        assert optimal_bits(0, 0.01) == 8

    def test_optimal_hashes_at_least_one(self):
        assert optimal_hashes(8, 1000) >= 1


class TestBloomFilter:
    def test_no_false_negatives(self):
        bloom = BloomFilter(500, 0.01)
        keys = list(range(0, 1000, 2))
        bloom.add_all(keys)
        assert all(bloom.may_contain(key) for key in keys)

    def test_false_positive_rate_near_target(self):
        bloom = BloomFilter(1000, 0.02)
        bloom.add_all(range(1000))
        false_positives = sum(
            1 for probe in range(100_000, 110_000) if bloom.may_contain(probe)
        )
        assert false_positives / 10_000 < 0.06  # 3x slack over target

    def test_empty_filter_rejects_everything(self):
        bloom = BloomFilter(100, 0.01)
        assert not any(bloom.may_contain(key) for key in range(50))

    def test_estimated_fpr_increases_with_load(self):
        bloom = BloomFilter(100, 0.01)
        empty_estimate = bloom.estimated_false_positive_rate()
        bloom.add_all(range(100))
        assert bloom.estimated_false_positive_rate() > empty_estimate

    def test_size_bytes_positive(self):
        assert BloomFilter(100, 0.01).size_bytes > 0

    def test_items_counted(self):
        bloom = BloomFilter(10, 0.1)
        bloom.add(1)
        bloom.add(2)
        assert bloom.items == 2


class TestCountingBloom:
    def test_remove_restores_absence(self):
        bloom = CountingBloomFilter(100, 0.01)
        bloom.add(42)
        assert bloom.may_contain(42)
        bloom.remove(42)
        assert not bloom.may_contain(42)

    def test_shared_positions_survive_one_removal(self):
        bloom = CountingBloomFilter(100, 0.01)
        bloom.add(1)
        bloom.add(1)
        bloom.remove(1)
        assert bloom.may_contain(1)

    def test_size_is_8x_plain(self):
        plain = BloomFilter(100, 0.01)
        counting = CountingBloomFilter(100, 0.01)
        assert counting.size_bytes == plain.bits


class TestCountMin:
    def test_never_undercounts(self):
        sketch = CountMinSketch(epsilon=0.01, delta=0.01)
        for key in range(100):
            sketch.add(key, count=key + 1)
        for key in range(100):
            assert sketch.estimate(key) >= key + 1

    def test_error_bound_holds_mostly(self):
        sketch = CountMinSketch(epsilon=0.01, delta=0.01)
        for key in range(200):
            sketch.add(key)
        bound = sketch.epsilon * sketch.total
        violations = sum(
            1 for key in range(200) if sketch.estimate(key) > 1 + bound
        )
        assert violations <= 10

    def test_absent_keys_can_be_zero(self):
        sketch = CountMinSketch(epsilon=0.1, delta=0.1)
        sketch.add(1)
        assert sketch.estimate(999999) >= 0

    def test_negative_count_rejected(self):
        sketch = CountMinSketch()
        with pytest.raises(ValueError):
            sketch.add(1, count=-1)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            CountMinSketch(epsilon=0)
        with pytest.raises(ValueError):
            CountMinSketch(delta=2)

    def test_size_bytes(self):
        sketch = CountMinSketch(epsilon=0.01, delta=0.05)
        assert sketch.size_bytes == sketch.width * sketch.depth * 4


class TestQuotientFilter:
    def test_no_false_negatives(self):
        qf = QuotientFilter(quotient_bits=12, remainder_bits=8)
        keys = list(range(0, 2000, 2))
        for key in keys:
            qf.add(key)
        assert all(qf.may_contain(key) for key in keys)

    def test_false_positive_rate_bounded(self):
        qf = QuotientFilter(quotient_bits=12, remainder_bits=8)
        for key in range(2000):
            qf.add(key)
        false_positives = sum(
            1 for probe in range(100_000, 105_000) if qf.may_contain(probe)
        )
        # Load 2000/4096 ~ 0.49; expected FPR ~ 0.49/256 ~ 0.2%.
        assert false_positives / 5000 < 0.02

    def test_remove_supports_deletion(self):
        qf = QuotientFilter(quotient_bits=10, remainder_bits=8)
        qf.add(7)
        assert qf.may_contain(7)
        assert qf.remove(7)
        assert not qf.may_contain(7)

    def test_remove_absent_returns_false(self):
        qf = QuotientFilter(quotient_bits=10, remainder_bits=8)
        qf.add(1)
        assert not qf.remove(123456)

    def test_overflow_raises(self):
        qf = QuotientFilter(quotient_bits=2, remainder_bits=4)
        for key in range(qf.capacity):
            qf.add(key)
        with pytest.raises(OverflowError):
            qf.add(9999)

    def test_size_formula(self):
        qf = QuotientFilter(quotient_bits=10, remainder_bits=8)
        assert qf.size_bytes == (1024 * 11 + 7) // 8

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            QuotientFilter(quotient_bits=0)
        with pytest.raises(ValueError):
            QuotientFilter(remainder_bits=0)

    def test_load_factor(self):
        qf = QuotientFilter(quotient_bits=4, remainder_bits=4)
        for key in range(8):
            qf.add(key)
        assert qf.load_factor == pytest.approx(0.5)


class TestZoneSynopsis:
    def test_entry_for_records(self):
        entry = ZoneSynopsis.entry_for([(5, 1), (2, 1), (9, 1)])
        assert entry.min_key == 2
        assert entry.max_key == 9
        assert entry.count == 3

    def test_entry_for_empty(self):
        assert ZoneSynopsis.entry_for([]) is None

    def test_may_contain_bounds(self):
        entry = ZoneEntry(10, 20, 5)
        assert entry.may_contain(10)
        assert entry.may_contain(20)
        assert not entry.may_contain(9)
        assert not entry.may_contain(21)

    def test_overlaps(self):
        entry = ZoneEntry(10, 20, 5)
        assert entry.overlaps(0, 10)
        assert entry.overlaps(20, 30)
        assert entry.overlaps(12, 15)
        assert not entry.overlaps(21, 30)
        assert not entry.overlaps(0, 9)

    def test_widen(self):
        entry = ZoneEntry(10, 20, 5)
        entry.widen(5)
        entry.widen(25)
        assert (entry.min_key, entry.max_key) == (5, 25)

    def test_candidates_for_key(self):
        synopsis = ZoneSynopsis()
        synopsis.set_zone(0, ZoneEntry(0, 9, 10))
        synopsis.set_zone(1, ZoneEntry(10, 19, 10))
        synopsis.set_zone(2, ZoneEntry(5, 15, 10))  # overlapping zone
        assert synopsis.candidates_for_key(7) == [0, 2]
        assert synopsis.candidates_for_key(12) == [1, 2]

    def test_candidates_for_range(self):
        synopsis = ZoneSynopsis()
        synopsis.set_zone(0, ZoneEntry(0, 9, 10))
        synopsis.set_zone(1, ZoneEntry(10, 19, 10))
        assert synopsis.candidates_for_range(8, 12) == [0, 1]

    def test_cleared_zone_skipped(self):
        synopsis = ZoneSynopsis()
        synopsis.set_zone(0, ZoneEntry(0, 9, 10))
        synopsis.set_zone(0, None)
        assert synopsis.candidates_for_key(5) == []
        assert len(synopsis) == 0
