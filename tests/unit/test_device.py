"""Unit tests for the instrumented block device."""

from __future__ import annotations

import pytest

from repro.storage.device import CostModel, DeviceCounters, IOStats, SimulatedDevice


class TestAllocation:
    def test_allocate_returns_unique_ids(self, device):
        ids = [device.allocate() for _ in range(10)]
        assert len(set(ids)) == 10
        assert device.allocated_blocks == 10

    def test_allocation_counted(self, device):
        device.allocate()
        device.allocate()
        assert device.counters.allocations == 2

    def test_free_releases_space(self, device):
        block = device.allocate()
        assert device.allocated_bytes == device.block_bytes
        device.free(block)
        assert device.allocated_bytes == 0
        assert device.counters.frees == 1

    def test_free_unallocated_raises(self, device):
        with pytest.raises(KeyError):
            device.free(99)

    def test_double_free_raises(self, device):
        block = device.allocate()
        device.free(block)
        with pytest.raises(KeyError):
            device.free(block)

    def test_ids_not_reused(self, device):
        first = device.allocate()
        device.free(first)
        second = device.allocate()
        assert second != first

    def test_invalid_block_size_rejected(self):
        with pytest.raises(ValueError):
            SimulatedDevice(block_bytes=0)
        with pytest.raises(ValueError):
            SimulatedDevice(block_bytes=-5)


class TestIO:
    def test_write_then_read_roundtrip(self, device):
        block = device.allocate()
        device.write(block, [1, 2, 3], used_bytes=48)
        assert device.read(block) == [1, 2, 3]

    def test_read_unallocated_raises(self, device):
        with pytest.raises(KeyError):
            device.read(42)

    def test_write_unallocated_raises(self, device):
        with pytest.raises(KeyError):
            device.write(42, "x")

    def test_read_unwritten_returns_none(self, device):
        block = device.allocate()
        assert device.read(block) is None

    def test_counters_track_bytes(self, device):
        block = device.allocate()
        device.write(block, "payload")
        device.read(block)
        device.read(block)
        assert device.counters.writes == 1
        assert device.counters.reads == 2
        assert device.counters.write_bytes == device.block_bytes
        assert device.counters.read_bytes == 2 * device.block_bytes

    def test_used_bytes_validation(self, device):
        block = device.allocate()
        with pytest.raises(ValueError):
            device.write(block, "x", used_bytes=-1)
        with pytest.raises(ValueError):
            device.write(block, "x", used_bytes=device.block_bytes + 1)

    def test_peek_charges_nothing(self, device):
        block = device.allocate()
        device.write(block, "quiet")
        before = device.snapshot()
        assert device.peek(block) == "quiet"
        delta = device.stats_since(before)
        assert delta.reads == 0 and delta.read_bytes == 0

    def test_peek_unallocated_raises(self, device):
        with pytest.raises(KeyError):
            device.peek(7)


class TestCostModel:
    def test_sequential_reads_cheaper_on_disk(self):
        device = SimulatedDevice(block_bytes=64, cost_model=CostModel.disk())
        blocks = [device.allocate() for _ in range(4)]
        for block in blocks:
            device.write(block, "x")
        device.reset_counters()
        for block in blocks:  # sequential ids
            device.read(block)
        sequential_time = device.counters.simulated_time
        device.reset_counters()
        for block in reversed(blocks):  # random-ish order
            device.read(block)
        random_time = device.counters.simulated_time
        assert random_time > sequential_time

    def test_flash_write_asymmetry(self):
        device = SimulatedDevice(block_bytes=64, cost_model=CostModel.flash())
        block = device.allocate()
        device.reset_counters()
        device.write(block, "x")
        write_time = device.counters.simulated_time
        device.reset_counters()
        device.read(block)
        read_time = device.counters.simulated_time
        assert write_time > read_time

    def test_presets_exist(self):
        for preset in (CostModel.dram(), CostModel.flash(), CostModel.disk(),
                       CostModel.shingled_disk()):
            assert preset.sequential_read > 0

    def test_first_access_counts_as_random(self):
        device = SimulatedDevice(block_bytes=64, cost_model=CostModel.disk())
        block = device.allocate()
        device.write(block, "x")
        device.reset_counters()
        device.read(block)
        assert device.counters.simulated_time == CostModel.disk().random_read


class TestSnapshots:
    def test_stats_since_isolates_window(self, device):
        block = device.allocate()
        device.write(block, "x")
        snapshot = device.snapshot()
        device.read(block)
        device.read(block)
        delta = device.stats_since(snapshot)
        assert delta.reads == 2
        assert delta.writes == 0

    def test_snapshot_is_immutable_copy(self, device):
        snapshot = device.snapshot()
        block = device.allocate()
        device.write(block, "x")
        assert snapshot.writes == 0

    def test_iostats_addition(self):
        a = IOStats(reads=1, writes=2, read_bytes=10, write_bytes=20)
        b = IOStats(reads=3, writes=4, read_bytes=30, write_bytes=40)
        total = a + b
        assert total.reads == 4
        assert total.writes == 6
        assert total.read_bytes == 40
        assert total.write_bytes == 60

    def test_reset_counters(self, device):
        block = device.allocate()
        device.write(block, "x")
        device.reset_counters()
        assert device.counters.reads == 0
        assert device.counters.writes == 0
        # Allocation state untouched.
        assert device.allocated_blocks == 1


class TestSpaceStats:
    def test_fill_factor(self, device):
        block = device.allocate()
        device.write(block, "x", used_bytes=device.block_bytes // 2)
        assert device.fill_factor() == pytest.approx(0.5)

    def test_fill_factor_empty_device(self, device):
        assert device.fill_factor() == 0.0

    def test_blocks_by_kind(self, device):
        device.allocate(kind="leaf")
        device.allocate(kind="leaf")
        device.allocate(kind="meta")
        assert device.blocks_by_kind() == {"leaf": 2, "meta": 1}

    def test_iter_block_ids(self, device):
        ids = {device.allocate() for _ in range(3)}
        assert set(device.iter_block_ids()) == ids
