"""Kill-and-recover property tests for the serving tier.

The harness runs a fixed five-transaction script against a btree behind
a :class:`FaultyDevice`, injecting a crash at *every* device write index
(plain and torn-WAL variants) and at every read index, then restarts —
a fresh :class:`Server` over the same method and device — and recovers.

After every crash point the recovered state must satisfy the
all-or-nothing durability property: it equals the acked history either
*without* or *with* the whole in-flight transaction (a commit can be
durable yet unacknowledged when the fault lands between the WAL sync
and the acknowledgment — e.g. mid-apply or in the post-commit
checkpoint), the structure audit must be clean, and the recovered
server must serve new transactions.
"""

from __future__ import annotations

import pytest

from repro.check import FaultPlan, build_audited_method
from repro.check.faults import DeviceFault, FaultyDevice
from repro.core.registry import create_method
from repro.serve import ABSENT, Server, ServerCrashed, SyncPolicy
from repro.storage.device import SimulatedDevice
from repro.storage.hierarchy import (
    HierarchicalDevice,
    LevelSpec,
    MemoryHierarchy,
)

#: Five transactions of mixed puts and deletes over the preloaded keys.
SCRIPT = [
    {2: 111, 3: 333},
    {4: ABSENT, 5: 555},
    {6: 666},
    {3: ABSENT, 8: 888},
    {10: 1010, 12: 1212},
]

PRELOAD = [(key, key * 10) for key in range(0, 40, 2)]

#: Aggressive checkpointing so the sweep also crosses checkpoint writes.
CHECKPOINT_EVERY = 3


def build_method():
    method = build_audited_method("btree", 4096, plan=FaultPlan(fail_write_at=1))
    method.device.disarm()
    method.bulk_load(list(PRELOAD))
    return method


def run_script(server):
    """Run SCRIPT; return (acked_txns, in_flight) at crash or completion."""
    session = server.connect()
    acked = []
    for writes in SCRIPT:
        try:
            session.begin()
            for key, value in writes.items():
                if value is ABSENT:
                    session.delete(key)
                else:
                    session.put(key, value)
            session.commit()
            acked.append(writes)
        except (DeviceFault, ServerCrashed):
            return acked, writes
    return acked, None


def apply_writes(state, writes):
    for key, value in writes.items():
        if value is ABSENT:
            state.pop(key, None)
        else:
            state[key] = value


def expected_states(acked, inflight):
    """The two admissible post-recovery states: acked, acked+inflight."""
    base = dict(PRELOAD)
    for writes in acked:
        apply_writes(base, writes)
    with_inflight = dict(base)
    if inflight is not None:
        apply_writes(with_inflight, inflight)
    return base, with_inflight


def clean_io_counts():
    """Device writes/reads a fault-free scripted run performs."""
    method = build_method()
    server = Server(method, checkpoint_every=CHECKPOINT_EVERY)
    before = method.device.snapshot()
    acked, inflight = run_script(server)
    assert inflight is None and len(acked) == len(SCRIPT)
    stats = method.device.stats_since(before)
    return stats.writes, stats.reads


CLEAN_WRITES, CLEAN_READS = clean_io_counts()


def crash_and_recover(plan):
    """Run the script under ``plan``; crash, restart, recover, verify.

    Returns ``False`` when the plan's trigger never fired (the script
    completed cleanly), ``True`` when the full crash/recovery property
    was exercised and held.
    """
    method = build_method()
    device = method.device
    device.arm(plan)
    server = Server(method, checkpoint_every=CHECKPOINT_EVERY)
    acked, inflight = run_script(server)
    if inflight is None:
        return False  # trigger never fired

    device.disarm()
    restarted = Server(method, checkpoint_every=CHECKPOINT_EVERY)
    report = restarted.recover()
    assert report.resumed_version >= len(acked)

    # Structure audit: no torn pages, counts consistent.
    assert method.audit() == []

    # All-or-nothing: the state equals exactly one of the candidates.
    without, with_inflight = expected_states(acked, inflight)
    keys = set(without) | set(with_inflight)
    session = restarted.connect()
    session.begin()
    state = {
        key: value
        for key in sorted(keys)
        if (value := session.get(key)) is not None
    }
    session.abort()
    assert state in (without, with_inflight), (
        f"recovered state is neither acked nor acked+inflight:\n"
        f"  state={state}\n  without={without}\n  with={with_inflight}"
    )

    # The recovered server serves new transactions.
    session.begin()
    session.put(99, 9999)
    session.commit()
    assert method.get(99) == 9999
    return True


class TestCrashAtEveryWrite:
    @pytest.mark.parametrize("index", range(1, CLEAN_WRITES + 1))
    def test_plain_write_crash(self, index):
        fired = crash_and_recover(
            FaultPlan(fail_write_at=index, max_faults=1)
        )
        assert fired, f"write trigger #{index} never fired"

    @pytest.mark.parametrize("index", range(1, CLEAN_WRITES + 1))
    def test_torn_wal_crash(self, index):
        # Torn injection is restricted to WAL blocks: torn *method*
        # pages model partial page writes, which need full-page-write
        # machinery the methods do not (and need not) have.
        fired = crash_and_recover(
            FaultPlan(
                fail_write_at=index,
                torn_writes=True,
                kinds=("wal",),
                max_faults=1,
            )
        )
        if not fired:
            pytest.skip(f"write #{index} is not a WAL write in this run")


class TestCrashAtEveryRead:
    @pytest.mark.parametrize("index", range(1, CLEAN_READS + 1))
    def test_read_crash(self, index):
        fired = crash_and_recover(
            FaultPlan(fail_read_at=index, max_faults=1)
        )
        if not fired:
            pytest.skip(f"read trigger #{index} never fired")


class TestCrashDuringRecovery:
    def test_second_recovery_succeeds_after_crashed_first(self):
        method = build_method()
        device = method.device
        device.arm(FaultPlan(fail_write_at=8, max_faults=1))
        server = Server(method, checkpoint_every=CHECKPOINT_EVERY)
        acked, inflight = run_script(server)
        assert inflight is not None
        # First recovery crashes too (fault during its checkpoint).
        device.arm(FaultPlan(fail_write_at=1, kinds=("wal",), max_faults=1))
        crashed = Server(method, checkpoint_every=CHECKPOINT_EVERY)
        with pytest.raises(DeviceFault):
            crashed.recover()
        with pytest.raises(ServerCrashed):
            crashed.begin()
        # Second attempt over a calm device completes.
        device.disarm()
        final = Server(method, checkpoint_every=CHECKPOINT_EVERY)
        final.recover()
        assert method.audit() == []
        without, with_inflight = expected_states(acked, inflight)
        state = {
            key: value
            for key in sorted(set(without) | set(with_inflight))
            if (value := method.get(key)) is not None
        }
        assert state in (without, with_inflight)


class TestRecoverGuards:
    def test_recover_requires_fresh_server(self):
        from repro.serve import TransactionStateError

        method = build_method()
        server = Server(method)
        session = server.connect()
        session.begin()
        session.put(0, 1)
        session.commit()
        with pytest.raises(TransactionStateError):
            server.recover()

    def test_txn_ids_do_not_collide_after_restart(self):
        method = build_method()
        device = method.device
        device.arm(FaultPlan(fail_write_at=10, max_faults=1))
        server = Server(method, checkpoint_every=CHECKPOINT_EVERY)
        run_script(server)
        device.disarm()
        restarted = Server(method, checkpoint_every=CHECKPOINT_EVERY)
        restarted.recover()
        # Replayed redo records are grouped by txn id; a reused id
        # could alias a surviving transaction's records in a later
        # replay.  (Ids with no durable records are safe to reuse —
        # nothing can witness them.)  The checkpoint record carries the
        # pre-crash high water precisely so this holds even after old
        # log blocks were freed.
        durable, _ = restarted.wal.replay()
        highest_durable = max((r.txn_id for r in durable), default=0)
        txn = restarted.begin()
        assert txn.txn_id > highest_durable
        assert txn.txn_id > 3  # ids 1-3 committed before the crash


# ----------------------------------------------------------------------
# The configuration sweep: {raw device, 2-level hierarchy} x
# {per-commit sync, group commit N=4}.
#
# Under group commit the all-or-nothing property is *per acked ticket*:
# a crash may erase parked (validated + logged but never synced)
# transactions wholesale, and may durably keep any version-order prefix
# of them — but every transaction whose ticket was acked before the
# crash must survive byte-identically, and each pending transaction is
# individually atomic.  Behind the hierarchy the same property must
# hold even though WAL writes park in the top level's pool until the
# group's ``sync_through`` — a crash between pool-write and write-back
# must never lose an acked commit.
# ----------------------------------------------------------------------

#: Two small write-back levels; tiny capacities force real evictions
#: and write-backs inside the five-transaction script.
HIER_SPECS = (
    dict(name="L0", capacity_blocks=4, access_cost=0.0001),
    dict(name="L1", capacity_blocks=16, access_cost=0.01),
)

CONFIGS = {
    "raw-percommit": (False, SyncPolicy.every_commit()),
    "raw-group4": (False, SyncPolicy.every_n(4)),
    "hier-percommit": (True, SyncPolicy.every_commit()),
    "hier-group4": (True, SyncPolicy.every_n(4)),
}


def mount_hierarchy(backing):
    """A fresh (cold) 2-level write-back chain over ``backing``."""
    specs = [LevelSpec(**spec) for spec in HIER_SPECS]
    return HierarchicalDevice(MemoryHierarchy(backing, specs))


def build_config_method(hierarchy):
    """A loaded btree with a FaultyDevice at the durability boundary.

    Raw: the method sits directly on the faulty device.  Hierarchy: the
    faulty device is the *backing* of the chain, so fault triggers
    count physical (backed) writes — exactly the writes that decide
    what survives a crash.
    """
    if not hierarchy:
        method = build_method()
        return method, method.device
    faulty = FaultyDevice(SimulatedDevice(block_bytes=4096))
    method = create_method("btree", device=mount_hierarchy(faulty))
    method.bulk_load(list(PRELOAD))
    method.device.flush()
    return method, faulty


def run_script_grouped(server):
    """Run SCRIPT under any sync policy; classify txns at crash time.

    Returns ``(acked, pending)``: the write sets whose commit tickets
    were acked, and — in version order — those that were submitted or
    in flight but never acknowledged.
    """
    session = server.connect()
    submitted = []
    inflight = None
    try:
        for writes in SCRIPT:
            inflight = writes
            session.begin()
            for key, value in writes.items():
                if value is ABSENT:
                    session.delete(key)
                else:
                    session.put(key, value)
            session.commit()
            submitted.append((session.last_ticket, writes))
            inflight = None
        server.poll_group(force=True)
    except (DeviceFault, ServerCrashed):
        pass
    # Tickets are acked in place by the group sync, so inspecting them
    # now reflects exactly what the crashed server acknowledged.
    acked = [writes for ticket, writes in submitted if ticket.acked]
    pending = [writes for ticket, writes in submitted if not ticket.acked]
    if inflight is not None:
        pending.append(inflight)
    return acked, pending


def admissible_states(acked, pending):
    """Every legal post-recovery state: acked history plus any
    version-order prefix of the pending transactions."""
    state = dict(PRELOAD)
    for writes in acked:
        apply_writes(state, writes)
    candidates = [dict(state)]
    for writes in pending:
        apply_writes(state, writes)
        candidates.append(dict(state))
    return candidates


def config_clean_writes(config):
    """Backed writes a fault-free run of ``config`` performs."""
    hierarchy, policy = CONFIGS[config]
    method, faulty = build_config_method(hierarchy)
    server = Server(
        method, checkpoint_every=CHECKPOINT_EVERY, sync_policy=policy
    )
    before = faulty.snapshot()
    acked, pending = run_script_grouped(server)
    assert pending == [] and len(acked) == len(SCRIPT)
    return faulty.stats_since(before).writes


CONFIG_WRITES = {name: config_clean_writes(name) for name in CONFIGS}


def crash_and_recover_config(config, plan):
    """Crash ``config`` under ``plan``, restart cold, verify the state."""
    hierarchy, policy = CONFIGS[config]
    method, faulty = build_config_method(hierarchy)
    faulty.arm(plan)
    server = Server(
        method, checkpoint_every=CHECKPOINT_EVERY, sync_policy=policy
    )
    acked, pending = run_script_grouped(server)
    if faulty.faults_injected == 0:
        return False  # trigger never fired

    faulty.disarm()
    if hierarchy:
        # A restart loses every cache level: remount a cold chain over
        # the surviving backing device.  Anything that only ever lived
        # in a pool is gone — which is the point of the sweep.
        method.device = mount_hierarchy(faulty)
    restarted = Server(
        method, checkpoint_every=CHECKPOINT_EVERY, sync_policy=policy
    )
    restarted.recover()
    assert method.audit() == []

    candidates = admissible_states(acked, pending)
    keys = set()
    for candidate in candidates:
        keys |= set(candidate)
    session = restarted.connect()
    session.begin()
    state = {
        key: value
        for key in sorted(keys)
        if (value := session.get(key)) is not None
    }
    session.abort()
    assert state in candidates, (
        f"recovered state is not the acked history plus a version-order "
        f"prefix of pending txns:\n  state={state}\n  acked={acked}\n"
        f"  pending={pending}"
    )

    # The recovered server serves new transactions.
    session.begin()
    session.put(99, 9999)
    session.commit()
    restarted.poll_group(force=True)
    assert method.get(99) == 9999
    return True


class TestCrashSweepConfigs:
    @pytest.mark.parametrize(
        "config,index",
        [
            (name, index)
            for name in CONFIGS
            for index in range(1, CONFIG_WRITES[name] + 1)
        ],
    )
    def test_acked_commits_survive_every_write_crash(self, config, index):
        fired = crash_and_recover_config(
            config, FaultPlan(fail_write_at=index, max_faults=1)
        )
        assert fired, f"write trigger #{index} never fired for {config}"

    @pytest.mark.parametrize(
        "config,index",
        [
            (name, index)
            for name in ("raw-group4", "hier-group4")
            for index in range(1, CONFIG_WRITES[name] + 1)
        ],
    )
    def test_torn_wal_crash_grouped(self, config, index):
        fired = crash_and_recover_config(
            config,
            FaultPlan(
                fail_write_at=index,
                torn_writes=True,
                kinds=("wal",),
                max_faults=1,
            ),
        )
        if not fired:
            pytest.skip(f"write #{index} is not a WAL write for {config}")
