"""Kill-and-recover property tests for the serving tier.

The harness runs a fixed five-transaction script against a btree behind
a :class:`FaultyDevice`, injecting a crash at *every* device write index
(plain and torn-WAL variants) and at every read index, then restarts —
a fresh :class:`Server` over the same method and device — and recovers.

After every crash point the recovered state must satisfy the
all-or-nothing durability property: it equals the acked history either
*without* or *with* the whole in-flight transaction (a commit can be
durable yet unacknowledged when the fault lands between the WAL sync
and the acknowledgment — e.g. mid-apply or in the post-commit
checkpoint), the structure audit must be clean, and the recovered
server must serve new transactions.
"""

from __future__ import annotations

import pytest

from repro.check import FaultPlan, build_audited_method
from repro.check.faults import DeviceFault
from repro.serve import ABSENT, Server, ServerCrashed

#: Five transactions of mixed puts and deletes over the preloaded keys.
SCRIPT = [
    {2: 111, 3: 333},
    {4: ABSENT, 5: 555},
    {6: 666},
    {3: ABSENT, 8: 888},
    {10: 1010, 12: 1212},
]

PRELOAD = [(key, key * 10) for key in range(0, 40, 2)]

#: Aggressive checkpointing so the sweep also crosses checkpoint writes.
CHECKPOINT_EVERY = 3


def build_method():
    method = build_audited_method("btree", 4096, plan=FaultPlan(fail_write_at=1))
    method.device.disarm()
    method.bulk_load(list(PRELOAD))
    return method


def run_script(server):
    """Run SCRIPT; return (acked_txns, in_flight) at crash or completion."""
    session = server.connect()
    acked = []
    for writes in SCRIPT:
        try:
            session.begin()
            for key, value in writes.items():
                if value is ABSENT:
                    session.delete(key)
                else:
                    session.put(key, value)
            session.commit()
            acked.append(writes)
        except (DeviceFault, ServerCrashed):
            return acked, writes
    return acked, None


def apply_writes(state, writes):
    for key, value in writes.items():
        if value is ABSENT:
            state.pop(key, None)
        else:
            state[key] = value


def expected_states(acked, inflight):
    """The two admissible post-recovery states: acked, acked+inflight."""
    base = dict(PRELOAD)
    for writes in acked:
        apply_writes(base, writes)
    with_inflight = dict(base)
    if inflight is not None:
        apply_writes(with_inflight, inflight)
    return base, with_inflight


def clean_io_counts():
    """Device writes/reads a fault-free scripted run performs."""
    method = build_method()
    server = Server(method, checkpoint_every=CHECKPOINT_EVERY)
    before = method.device.snapshot()
    acked, inflight = run_script(server)
    assert inflight is None and len(acked) == len(SCRIPT)
    stats = method.device.stats_since(before)
    return stats.writes, stats.reads


CLEAN_WRITES, CLEAN_READS = clean_io_counts()


def crash_and_recover(plan):
    """Run the script under ``plan``; crash, restart, recover, verify.

    Returns ``False`` when the plan's trigger never fired (the script
    completed cleanly), ``True`` when the full crash/recovery property
    was exercised and held.
    """
    method = build_method()
    device = method.device
    device.arm(plan)
    server = Server(method, checkpoint_every=CHECKPOINT_EVERY)
    acked, inflight = run_script(server)
    if inflight is None:
        return False  # trigger never fired

    device.disarm()
    restarted = Server(method, checkpoint_every=CHECKPOINT_EVERY)
    report = restarted.recover()
    assert report.resumed_version >= len(acked)

    # Structure audit: no torn pages, counts consistent.
    assert method.audit() == []

    # All-or-nothing: the state equals exactly one of the candidates.
    without, with_inflight = expected_states(acked, inflight)
    keys = set(without) | set(with_inflight)
    session = restarted.connect()
    session.begin()
    state = {
        key: value
        for key in sorted(keys)
        if (value := session.get(key)) is not None
    }
    session.abort()
    assert state in (without, with_inflight), (
        f"recovered state is neither acked nor acked+inflight:\n"
        f"  state={state}\n  without={without}\n  with={with_inflight}"
    )

    # The recovered server serves new transactions.
    session.begin()
    session.put(99, 9999)
    session.commit()
    assert method.get(99) == 9999
    return True


class TestCrashAtEveryWrite:
    @pytest.mark.parametrize("index", range(1, CLEAN_WRITES + 1))
    def test_plain_write_crash(self, index):
        fired = crash_and_recover(
            FaultPlan(fail_write_at=index, max_faults=1)
        )
        assert fired, f"write trigger #{index} never fired"

    @pytest.mark.parametrize("index", range(1, CLEAN_WRITES + 1))
    def test_torn_wal_crash(self, index):
        # Torn injection is restricted to WAL blocks: torn *method*
        # pages model partial page writes, which need full-page-write
        # machinery the methods do not (and need not) have.
        fired = crash_and_recover(
            FaultPlan(
                fail_write_at=index,
                torn_writes=True,
                kinds=("wal",),
                max_faults=1,
            )
        )
        if not fired:
            pytest.skip(f"write #{index} is not a WAL write in this run")


class TestCrashAtEveryRead:
    @pytest.mark.parametrize("index", range(1, CLEAN_READS + 1))
    def test_read_crash(self, index):
        fired = crash_and_recover(
            FaultPlan(fail_read_at=index, max_faults=1)
        )
        if not fired:
            pytest.skip(f"read trigger #{index} never fired")


class TestCrashDuringRecovery:
    def test_second_recovery_succeeds_after_crashed_first(self):
        method = build_method()
        device = method.device
        device.arm(FaultPlan(fail_write_at=8, max_faults=1))
        server = Server(method, checkpoint_every=CHECKPOINT_EVERY)
        acked, inflight = run_script(server)
        assert inflight is not None
        # First recovery crashes too (fault during its checkpoint).
        device.arm(FaultPlan(fail_write_at=1, kinds=("wal",), max_faults=1))
        crashed = Server(method, checkpoint_every=CHECKPOINT_EVERY)
        with pytest.raises(DeviceFault):
            crashed.recover()
        with pytest.raises(ServerCrashed):
            crashed.begin()
        # Second attempt over a calm device completes.
        device.disarm()
        final = Server(method, checkpoint_every=CHECKPOINT_EVERY)
        final.recover()
        assert method.audit() == []
        without, with_inflight = expected_states(acked, inflight)
        state = {
            key: value
            for key in sorted(set(without) | set(with_inflight))
            if (value := method.get(key)) is not None
        }
        assert state in (without, with_inflight)


class TestRecoverGuards:
    def test_recover_requires_fresh_server(self):
        from repro.serve import TransactionStateError

        method = build_method()
        server = Server(method)
        session = server.connect()
        session.begin()
        session.put(0, 1)
        session.commit()
        with pytest.raises(TransactionStateError):
            server.recover()

    def test_txn_ids_do_not_collide_after_restart(self):
        method = build_method()
        device = method.device
        device.arm(FaultPlan(fail_write_at=10, max_faults=1))
        server = Server(method, checkpoint_every=CHECKPOINT_EVERY)
        run_script(server)
        device.disarm()
        restarted = Server(method, checkpoint_every=CHECKPOINT_EVERY)
        restarted.recover()
        # Replayed redo records are grouped by txn id; a reused id
        # could alias a surviving transaction's records in a later
        # replay.  (Ids with no durable records are safe to reuse —
        # nothing can witness them.)  The checkpoint record carries the
        # pre-crash high water precisely so this holds even after old
        # log blocks were freed.
        durable, _ = restarted.wal.replay()
        highest_durable = max((r.txn_id for r in durable), default=0)
        txn = restarted.begin()
        assert txn.txn_id > highest_durable
        assert txn.txn_id > 3  # ids 1-3 committed before the crash
