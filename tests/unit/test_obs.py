"""Unit tests for the observability layer (repro.obs)."""

from __future__ import annotations

import json
import math

import pytest

from repro.obs.metrics import Histogram, WorkloadMetrics
from repro.obs.sinks import JsonlSink, ListSink
from repro.obs.tracer import NULL_TRACER, RecordingTracer, TraceEvent, Tracer
from repro.storage.cached import CachedDevice
from repro.storage.device import SimulatedDevice

from tests.conftest import SMALL_BLOCK


class ExplodingTracer(Tracer):
    """Disabled tracer that fails the test if emit is ever reached."""

    enabled = False

    def emit(self, *args, **kwargs):
        raise AssertionError("emit() called while tracing was disabled")


class TestTracer:
    def test_null_tracer_is_disabled_and_silent(self):
        assert NULL_TRACER.enabled is False
        NULL_TRACER.emit(source="d", op="read", block_id=0)  # no-op

    def test_recording_tracer_numbers_events(self):
        sink = ListSink()
        tracer = RecordingTracer(sink)
        tracer.emit(source="d", op="read", block_id=3, cost=1.0, nbytes=256)
        tracer.emit(source="d", op="write", block_id=4)
        assert tracer.events_emitted == 2
        assert [event.seq for event in sink.events] == [0, 1]
        assert sink.events[0].op == "read"
        assert sink.events[0].block_id == 3

    def test_disabled_hot_path_never_calls_emit(self):
        device = SimulatedDevice(block_bytes=SMALL_BLOCK)
        device.set_tracer(ExplodingTracer())
        block = device.allocate()
        device.write(block, "x", used_bytes=8)
        device.read(block)
        device.free(block)  # nothing raised: zero-cost when disabled

    def test_device_emits_full_event_stream(self):
        sink = ListSink()
        device = SimulatedDevice(block_bytes=SMALL_BLOCK, name="flash")
        device.set_tracer(RecordingTracer(sink))
        block = device.allocate(kind="leaf")
        device.write(block, "x", used_bytes=8)
        device.read(block)
        device.free(block)
        assert [event.op for event in sink.events] == [
            "alloc", "write", "read", "free",
        ]
        read = sink.events[2]
        assert read.source == "flash"
        assert read.kind == "leaf"
        assert read.nbytes == SMALL_BLOCK
        assert read.cost == device.cost_model.random_read

    def test_sequential_flag_follows_block_ids(self):
        sink = ListSink()
        device = SimulatedDevice(block_bytes=SMALL_BLOCK)
        blocks = [device.allocate() for _ in range(3)]
        for block in blocks:
            device.write(block, block)
        device.set_tracer(RecordingTracer(sink))
        for block in blocks:
            device.read(block)
        device.read(blocks[0])
        flags = [event.sequential for event in sink.events]
        assert flags == [False, True, True, False]

    def test_tracing_does_not_change_counters(self):
        plain = SimulatedDevice(block_bytes=SMALL_BLOCK)
        traced = SimulatedDevice(block_bytes=SMALL_BLOCK)
        traced.set_tracer(RecordingTracer(ListSink()))
        for device in (plain, traced):
            block = device.allocate()
            device.write(block, "x", used_bytes=16)
            device.read(block)
        assert plain.counters == traced.counters


class TestCachedDeviceTracing:
    def test_set_tracer_covers_device_pool_and_backing(self):
        sink = ListSink()
        backing = SimulatedDevice(block_bytes=SMALL_BLOCK, name="flash")
        cached = CachedDevice(backing, capacity_blocks=1)
        cached.set_tracer(RecordingTracer(sink))
        a, b = cached.allocate(), cached.allocate()
        cached.write(a, "a", used_bytes=4)
        cached.write(b, "b", used_bytes=4)  # evicts + writes back a
        sources = {event.source for event in sink.events}
        assert {"cached(flash)", "pool(flash)", "flash"} <= sources
        ops = {event.op for event in sink.events}
        assert {"alloc", "write", "evict", "write_back"} <= ops


class TestSinks:
    def test_jsonl_round_trip(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with JsonlSink(path) as sink:
            tracer = RecordingTracer(sink)
            tracer.emit(source="d", op="read", block_id=1, kind="leaf",
                        sequential=True, cost=1.5, nbytes=256)
            tracer.emit(source="d", op="free", block_id=1)
            assert sink.events_written == 2
        with open(path) as handle:
            rows = [json.loads(line) for line in handle]
        assert rows[0] == {
            "seq": 0, "source": "d", "op": "read", "block_id": 1,
            "kind": "leaf", "sequential": True, "cost": 1.5, "nbytes": 256,
            "span": "",
        }
        assert rows[1]["op"] == "free"

    def test_jsonl_close_is_idempotent(self, tmp_path):
        sink = JsonlSink(str(tmp_path / "e.jsonl"))
        sink.close()
        sink.close()

    def test_jsonl_survives_mid_workload_fault(self, tmp_path):
        """A DeviceFault mid-workload leaves a complete, parseable trace.

        The sink's context manager closes (flushes) on the exception
        path, so every event emitted before the fault — including the
        ``fault`` event itself — is a whole JSON line on disk.
        """
        import pytest

        from repro.check.faults import DeviceFault, FaultPlan, FaultyDevice
        from repro.core.registry import create_method
        from repro.storage.device import SimulatedDevice
        from repro.workloads.runner import run_workload
        from repro.workloads.spec import WorkloadSpec

        path = str(tmp_path / "faulted.jsonl")
        device = FaultyDevice(
            SimulatedDevice(block_bytes=SMALL_BLOCK),
            FaultPlan(fail_read_at=40),
        )
        spec = WorkloadSpec(
            point_queries=0.5, inserts=0.3, updates=0.2,
            operations=400, initial_records=600,
        )
        with pytest.raises(DeviceFault):
            with JsonlSink(path) as sink:
                device.set_tracer(RecordingTracer(sink))
                run_workload(create_method("btree", device=device), spec)
        with open(path) as handle:
            rows = [json.loads(line) for line in handle]  # every line parses
        assert rows, "no events reached the sink before the fault"
        assert [row["seq"] for row in rows] == list(range(len(rows)))
        assert rows[-1]["op"] == "fault"
        assert rows[-1]["source"] == "faulty(device)"

    def test_event_to_dict_matches_fields(self):
        event = TraceEvent(seq=7, source="s", op="evict", block_id=9)
        assert event.to_dict()["seq"] == 7
        assert event.to_dict()["op"] == "evict"


class TestHistogram:
    def test_empty_histogram(self):
        histogram = Histogram()
        assert histogram.count == 0
        assert histogram.mean == 0.0
        assert histogram.min == 0.0 and histogram.max == 0.0
        assert histogram.percentile(0.5) == 0.0

    def test_summary_statistics_are_exact(self):
        histogram = Histogram()
        for value in [1, 2, 2, 3, 10]:
            histogram.record(value)
        assert histogram.count == 5
        assert histogram.total == 18
        assert histogram.mean == pytest.approx(3.6)
        assert histogram.min == 1 and histogram.max == 10
        assert histogram.percentile(0.5) == 2
        assert histogram.percentile(1.0) == 10
        assert histogram.to_dict() == {1: 1, 2: 2, 3: 1, 10: 1}

    def test_rejects_bad_input(self):
        histogram = Histogram()
        with pytest.raises(ValueError):
            histogram.record(-1)
        with pytest.raises(ValueError):
            histogram.percentile(1.5)

    def test_percentile_uses_ceil_rank_not_bankers_rounding(self):
        # Nearest-rank: p50 of five samples is the ceil(0.5*5)=3rd
        # smallest.  The old round() banker's-rounded 2.5 down to rank
        # 2 and reported the 2nd smallest.
        histogram = Histogram.from_samples([1, 2, 3, 4, 5])
        assert histogram.percentile(0.5) == 3
        assert histogram.percentile(0.25) == 2  # ceil(1.25) = rank 2
        assert histogram.percentile(0.95) == 5
        assert histogram.percentile(0.0) == 1   # rank clamps up to 1

    def test_percentile_exact_ranks_across_sizes(self):
        for count in range(1, 12):
            histogram = Histogram.from_samples(range(1, count + 1))
            for numerator in range(0, 101):
                fraction = numerator / 100
                expected = max(1, math.ceil(fraction * count))
                assert histogram.percentile(fraction) == expected

    def test_from_samples_matches_record(self):
        recorded = Histogram()
        for value in (3, 1, 2, 2):
            recorded.record(value)
        built = Histogram.from_samples([3, 1, 2, 2])
        assert built.to_dict() == recorded.to_dict()
        assert built.count == recorded.count
        assert built.total == recorded.total

    def test_merge_folds_counts(self):
        left, right = Histogram(), Histogram()
        left.record(1)
        right.record(1)
        right.record(4)
        left.merge(right)
        assert left.count == 3
        assert left.to_dict() == {1: 2, 4: 1}


class TestWorkloadMetrics:
    def test_records_per_label(self):
        metrics = WorkloadMetrics()
        metrics.record("point_query", 2, 2.0)
        metrics.record("point_query", 4, 4.0)
        metrics.record("insert", 1, 10.0)
        # Canonical presentation order: queries before mutations,
        # regardless of recording or alphabetical order.
        assert metrics.labels() == ["point_query", "insert"]
        assert metrics.blocks["point_query"].mean == 3.0
        assert metrics.time["insert"].total == 10.0

    def test_labels_pin_canonical_order_with_unknowns_last(self):
        metrics = WorkloadMetrics()
        for label in ("zz_custom", "flush", "insert", "range_query",
                      "aa_custom", "point_query", "delete", "update"):
            metrics.record(label, 1, 1.0)
        assert metrics.labels() == [
            "point_query", "range_query", "insert", "update", "delete",
            "flush", "aa_custom", "zz_custom",
        ]

    def test_serve_labels_render_in_lifecycle_order(self):
        # The serving tier's txn-*/wal-* kinds are canonical now:
        # protocol order (begin -> validate -> park -> commit/abort,
        # append -> sync, checkpoint, recover), not alphabetical
        # unknowns after the storage ops.
        metrics = WorkloadMetrics()
        for label in ("wal-sync", "txn-commit", "recover", "txn-begin",
                      "point_query", "wal-append", "txn-abort",
                      "checkpoint", "txn-validate", "txn-park", "flush"):
            metrics.record(label, 1, 1.0)
        assert metrics.labels() == [
            "point_query", "flush", "txn-begin", "txn-validate",
            "txn-park", "txn-commit", "txn-abort", "wal-append",
            "wal-sync", "checkpoint", "recover",
        ]

    def test_rows_match_headers(self):
        metrics = WorkloadMetrics()
        metrics.record("insert", 3, 30.0)
        rows = metrics.rows()
        assert len(rows) == 1
        assert len(rows[0]) == len(WorkloadMetrics.HEADERS)
        assert rows[0][0] == "insert"
        assert rows[0][1] == 1  # count


class TestRunnerIntegration:
    def test_run_workload_fills_metrics(self):
        from repro.core.registry import create_method
        from repro.workloads.runner import run_workload
        from repro.workloads.spec import WorkloadSpec

        spec = WorkloadSpec(
            point_queries=0.5, inserts=0.3, updates=0.2,
            operations=200, initial_records=600,
        )
        metrics = WorkloadMetrics()
        result = run_workload(
            create_method("btree", device=SimulatedDevice(block_bytes=SMALL_BLOCK)),
            spec,
            metrics=metrics,
        )
        assert "point_query" in metrics.blocks
        assert "insert" in metrics.blocks
        ops_recorded = sum(
            metrics.blocks[label].count
            for label in metrics.labels()
            if label != "flush"
        )
        assert ops_recorded == spec.operations
        # Histogram totals are the same I/O the profile aggregated.
        assert result.profile.read_overhead > 0

    def test_metrics_are_deterministic(self):
        from repro.core.registry import create_method
        from repro.workloads.runner import run_workload
        from repro.workloads.spec import WorkloadSpec

        spec = WorkloadSpec(
            point_queries=0.6, inserts=0.4, operations=150, initial_records=400,
        )
        snapshots = []
        for _ in range(2):
            metrics = WorkloadMetrics()
            run_workload(
                create_method("lsm", device=SimulatedDevice(block_bytes=SMALL_BLOCK)),
                spec,
                metrics=metrics,
            )
            snapshots.append(
                {label: metrics.blocks[label].to_dict() for label in metrics.labels()}
            )
        assert snapshots[0] == snapshots[1]
