"""Structure-specific tests for the SILT-style multi-store (Section 4)."""

from __future__ import annotations

import pytest

from repro.methods.silt import SILTStore
from repro.storage.device import SimulatedDevice

from tests.conftest import SMALL_BLOCK, sample_records


def make(**kwargs):
    defaults = dict(log_records=32, merge_stores=3)
    defaults.update(kwargs)
    return SILTStore(SimulatedDevice(block_bytes=SMALL_BLOCK), **defaults)


class TestStagePipeline:
    def test_writes_land_in_the_log(self, silt=None):
        silt = make()
        silt.bulk_load(sample_records(64))
        silt.insert(1001, 1)
        assert silt.log_entries == 1
        assert silt.hash_store_count == 0
        assert silt.get(1001) == 1

    def test_log_seals_into_hash_store(self):
        silt = make(log_records=8)
        silt.bulk_load(sample_records(64))
        for i in range(8):
            silt.update(2 * i, i)
        assert silt.log_entries == 0
        assert silt.hash_store_count == 1
        assert silt.get(0) == 0

    def test_hash_stores_merge_into_sorted(self):
        silt = make(log_records=8, merge_stores=2)
        silt.bulk_load(sample_records(64))
        for i in range(16):
            silt.update(2 * (i % 64), i)
        # Two seals happened; the merge folded them into the sorted store.
        assert silt.hash_store_count < 2
        assert silt.range_query(-1, 10**9)[0][0] == 0

    def test_log_read_is_one_block(self):
        silt = make()
        silt.bulk_load(sample_records(256))
        silt.update(10, 999)
        before = silt.device.snapshot()
        assert silt.get(10) == 999
        io = silt.device.stats_since(before)
        assert io.reads <= 1  # directory is memory; at most the log block

    def test_hash_store_read_is_one_bucket(self):
        silt = make(log_records=8, merge_stores=100)
        silt.bulk_load(sample_records(256))
        for i in range(8):
            silt.update(2 * i, 7000 + i)
        assert silt.hash_store_count == 1
        before = silt.device.snapshot()
        assert silt.get(0) == 7000
        io = silt.device.stats_since(before)
        assert io.reads == 1


class TestVersionOrdering:
    def test_newest_wins_across_stages(self):
        silt = make(log_records=8, merge_stores=100)
        silt.bulk_load(sample_records(64))  # sorted store: version 0
        for i in range(8):
            silt.update(0, 100 + i)  # seals a hash store with version 107
        silt.update(0, 999)  # newest lives in the log
        assert silt.get(0) == 999

    def test_double_update_within_tail(self):
        silt = make(log_records=64)
        silt.bulk_load(sample_records(32))
        silt.update(10, 1)
        silt.update(10, 2)
        silt.flush()
        assert silt.get(10) == 2

    def test_deletes_propagate_through_merge(self):
        silt = make(log_records=8, merge_stores=2)
        silt.bulk_load(sample_records(64))
        silt.delete(10)
        for i in range(32):  # churn to force seals and merges
            silt.update(2 * ((i % 50) + 10), i)  # keys 20..118, never 10
        assert silt.get(10) is None
        assert 10 not in dict(silt.range_query(0, 200))


class TestBalance:
    def test_update_cost_near_append_floor(self):
        silt = make(log_records=64, merge_stores=100)
        silt.bulk_load(sample_records(256))
        before = silt.device.snapshot()
        for i in range(60):  # below the seal threshold
            silt.update(2 * (i % 256), i)
        silt.flush()
        io = silt.device.stats_since(before)
        # Appends batch into blocks: ~1 block per 16 records.
        assert io.writes <= 6

    def test_space_tracks_directory(self):
        silt = make(log_records=1024, merge_stores=100)
        silt.bulk_load(sample_records(64))
        before = silt.space_bytes()
        for i in range(100):
            silt.insert(10_001 + 2 * i, i)
        assert silt.space_bytes() > before

    def test_validation(self):
        with pytest.raises(ValueError):
            make(log_records=0)
        with pytest.raises(ValueError):
            make(merge_stores=0)
