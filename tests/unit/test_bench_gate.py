"""Unit tests for ``tools/bench_gate.py`` — the span perf-regression gate.

The gate's contract (ISSUE 5): exit 0 when a candidate profile matches
its committed baseline, non-zero on any span byte-attribution drift
beyond threshold or a large throughput drop, and 2 on unusable input.
Profiles here are synthetic ``repro explain --json`` payloads, so every
branch is reachable without running workloads.
"""

from __future__ import annotations

import copy
import json
import os
import sys

import pytest

TOOLS_PATH = os.path.join(os.path.dirname(__file__), "..", "..", "tools")


def _bench_gate():
    sys.path.insert(0, TOOLS_PATH)
    try:
        import bench_gate
    finally:
        sys.path.remove(TOOLS_PATH)
    return bench_gate


def _profile(**overrides):
    payload = {
        "method": "btree",
        "ops_per_sec": 10_000.0,
        "spans": [
            {"path": "op.point_query", "read_bytes": 4096, "write_bytes": 0,
             "ro_bytes": 4096, "uo_bytes": 0},
            {"path": "op.point_query/btree.descent", "read_bytes": 4096,
             "write_bytes": 0, "ro_bytes": 4096, "uo_bytes": 0},
            {"path": "op.insert", "read_bytes": 1024, "write_bytes": 2048,
             "ro_bytes": 0, "uo_bytes": 2048},
        ],
    }
    payload.update(overrides)
    return payload


def _write(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return str(path)


class TestDiff:
    def test_identical_profiles_pass(self):
        bench_gate = _bench_gate()
        regressions, _notes = bench_gate.diff_profiles(
            _profile(), _profile(), byte_threshold=0.02, ops_threshold=0.30
        )
        assert regressions == []

    def test_byte_growth_beyond_threshold_fails(self):
        bench_gate = _bench_gate()
        candidate = _profile()
        candidate["spans"][1]["read_bytes"] = 6144  # +50% descent reads
        regressions, _ = bench_gate.diff_profiles(
            _profile(), candidate, byte_threshold=0.02, ops_threshold=0.30
        )
        assert any("btree.descent" in r and "read_bytes" in r
                   for r in regressions)

    def test_small_byte_drift_is_a_note_not_a_regression(self):
        bench_gate = _bench_gate()
        candidate = _profile()
        candidate["spans"][1]["read_bytes"] = 4100  # +0.1%
        regressions, notes = bench_gate.diff_profiles(
            _profile(), candidate, byte_threshold=0.02, ops_threshold=0.30
        )
        assert regressions == []
        assert any("btree.descent" in n for n in notes)

    def test_span_growing_bytes_from_zero_fails(self):
        bench_gate = _bench_gate()
        candidate = _profile()
        candidate["spans"][0]["write_bytes"] = 512
        regressions, _ = bench_gate.diff_profiles(
            _profile(), candidate, byte_threshold=0.02, ops_threshold=0.30
        )
        assert any("grew 0 -> 512" in r for r in regressions)

    def test_appeared_span_with_bytes_fails_without_bytes_notes(self):
        bench_gate = _bench_gate()
        with_bytes = _profile()
        with_bytes["spans"].append(
            {"path": "op.insert/surprise", "read_bytes": 100,
             "write_bytes": 0, "ro_bytes": 0, "uo_bytes": 0}
        )
        regressions, _ = bench_gate.diff_profiles(
            _profile(), with_bytes, byte_threshold=0.02, ops_threshold=0.30
        )
        assert any("appeared" in r for r in regressions)

        empty = copy.deepcopy(_profile())
        empty["spans"].append(
            {"path": "op.insert/empty", "read_bytes": 0, "write_bytes": 0,
             "ro_bytes": 0, "uo_bytes": 0}
        )
        regressions, notes = bench_gate.diff_profiles(
            _profile(), empty, byte_threshold=0.02, ops_threshold=0.30
        )
        assert regressions == []
        assert any("appeared" in n for n in notes)

    def test_disappeared_span_with_baseline_bytes_fails(self):
        bench_gate = _bench_gate()
        candidate = _profile()
        candidate["spans"] = candidate["spans"][:2]  # op.insert gone
        regressions, _ = bench_gate.diff_profiles(
            _profile(), candidate, byte_threshold=0.02, ops_threshold=0.30
        )
        assert any("disappeared" in r for r in regressions)

    def test_throughput_drop_beyond_threshold_fails(self):
        bench_gate = _bench_gate()
        slow = _profile(ops_per_sec=5_000.0)  # -50%
        regressions, _ = bench_gate.diff_profiles(
            _profile(), slow, byte_threshold=0.02, ops_threshold=0.30
        )
        assert any("throughput" in r for r in regressions)
        # Inside the generous wall-clock tolerance: just a note.
        ok = _profile(ops_per_sec=8_000.0)  # -20%
        regressions, notes = bench_gate.diff_profiles(
            _profile(), ok, byte_threshold=0.02, ops_threshold=0.30
        )
        assert regressions == []
        assert any("throughput" in n for n in notes)


class TestMain:
    def test_pass_exits_zero(self, tmp_path, capsys):
        bench_gate = _bench_gate()
        baseline = _write(tmp_path, "base.json", _profile())
        candidate = _write(tmp_path, "cand.json", _profile())
        assert bench_gate.main([baseline, candidate]) == 0
        assert "bench_gate: pass" in capsys.readouterr().out

    def test_regression_exits_one(self, tmp_path, capsys):
        bench_gate = _bench_gate()
        slow = _profile(ops_per_sec=1_000.0)
        baseline = _write(tmp_path, "base.json", _profile())
        candidate = _write(tmp_path, "cand.json", slow)
        assert bench_gate.main([baseline, candidate]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION:" in out and "bench_gate: FAIL" in out

    def test_method_mismatch_exits_two(self, tmp_path, capsys):
        bench_gate = _bench_gate()
        baseline = _write(tmp_path, "base.json", _profile())
        candidate = _write(tmp_path, "cand.json", _profile(method="lsm"))
        assert bench_gate.main([baseline, candidate]) == 2
        assert "different methods" in capsys.readouterr().err

    def test_malformed_profile_rejected(self, tmp_path):
        bench_gate = _bench_gate()
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"not": "a profile"}))
        good = _write(tmp_path, "good.json", _profile())
        with pytest.raises(SystemExit):
            bench_gate.main([str(bad), good])

    def test_missing_file_rejected(self, tmp_path):
        bench_gate = _bench_gate()
        good = _write(tmp_path, "good.json", _profile())
        with pytest.raises(SystemExit):
            bench_gate.main([str(tmp_path / "absent.json"), good])

    def test_quiet_suppresses_notes(self, tmp_path, capsys):
        bench_gate = _bench_gate()
        baseline = _write(tmp_path, "base.json", _profile())
        candidate = _write(
            tmp_path, "cand.json", _profile(ops_per_sec=9_500.0)
        )
        assert bench_gate.main([baseline, candidate, "--quiet"]) == 0
        assert "  ok:" not in capsys.readouterr().out

    def test_candidate_required_without_trajectory(self, tmp_path):
        bench_gate = _bench_gate()
        baseline = _write(tmp_path, "base.json", _profile())
        with pytest.raises(SystemExit):
            bench_gate.main([baseline])


def _trajectory(**latest_device):
    """A two-entry trajectory: a per-op-only first entry and a batched
    latest entry that comfortably clears every default check."""
    device = {
        "read_ops_per_sec": 10_000.0,
        "write_ops_per_sec": 6_000.0,
        "read_many_ops_per_sec": 25_000.0,
        "write_many_ops_per_sec": 15_000.0,
    }
    device.update(latest_device)
    return {
        "entries": [
            {
                "label": "pre-batch",
                "device": {
                    "read_ops_per_sec": 9_000.0,
                    "write_ops_per_sec": 5_500.0,
                },
            },
            {"label": "batched", "device": device},
        ]
    }


def _sweep(parallel_speedup, cpus=1, jobs=4):
    return {
        "cells": 32,
        "jobs": jobs,
        "cpus": cpus,
        "parallel_speedup": parallel_speedup,
    }


class TestTrajectory:
    def _check(self, data, **kwargs):
        bench_gate = _bench_gate()
        kwargs.setdefault("min_batched_multiple", 2.0)
        kwargs.setdefault("ops_threshold", 0.30)
        return bench_gate.check_trajectory(data, **kwargs)

    def test_healthy_trajectory_passes(self):
        regressions, notes = self._check(_trajectory())
        assert regressions == []
        assert any("2." in n and "read_many" in n for n in notes)

    def test_single_entry_trajectory_passes(self):
        data = _trajectory()
        data["entries"] = data["entries"][-1:]
        regressions, _ = self._check(data)
        assert regressions == []

    def test_throughput_drop_beyond_threshold_fails(self):
        data = _trajectory(read_ops_per_sec=5_000.0)  # -44% vs 9,000
        regressions, _ = self._check(data)
        assert any("read_ops_per_sec" in r for r in regressions)

    def test_batched_below_required_multiple_fails(self):
        data = _trajectory(write_many_ops_per_sec=10_000.0)  # < 2 x 5,500
        regressions, _ = self._check(data)
        assert any("write_many_ops_per_sec" in r and "2.0x" in r
                   for r in regressions)

    def test_missing_batched_field_fails_the_multiple_check(self):
        data = _trajectory()
        del data["entries"][-1]["device"]["read_many_ops_per_sec"]
        regressions, _ = self._check(data)
        assert any("read_many_ops_per_sec" in r for r in regressions)

    def test_zero_multiple_disables_the_batched_check(self):
        data = _trajectory(read_many_ops_per_sec=1.0)
        regressions, _ = self._check(data, min_batched_multiple=0.0)
        assert regressions == []

    def test_empty_or_malformed_trajectory_rejected(self):
        with pytest.raises(SystemExit):
            self._check({"entries": []})
        with pytest.raises(SystemExit):
            self._check({"device": {}})  # legacy flat shape
        broken = _trajectory()
        del broken["entries"][0]["device"]["read_ops_per_sec"]
        with pytest.raises(SystemExit):
            self._check(broken)

    def test_entries_without_sweep_data_skip_sweep_checks(self):
        regressions, notes = self._check(_trajectory())
        assert regressions == []
        assert any("sweep checks skipped" in n for n in notes)

    def test_sweep_below_cpu_aware_floor_fails(self):
        # 4 cpus, jobs=4: the full 2.5x bar applies and 1.1x misses it.
        data = _trajectory()
        data["entries"][-1]["sweep"] = _sweep(
            parallel_speedup=1.1, cpus=4, jobs=4
        )
        regressions, _ = self._check(data)
        assert any("floor 2.50x" in r for r in regressions)

    def test_floor_degrades_on_a_single_cpu_box(self):
        # 1 cpu: wall-clock speedup is capped at 1.0, so the floor is
        # 0.85 (bounded scheduler overhead), which 0.95x clears.
        data = _trajectory()
        data["entries"][-1]["sweep"] = _sweep(
            parallel_speedup=0.95, cpus=1, jobs=4
        )
        regressions, notes = self._check(data)
        assert regressions == []
        assert any("floor 0.85x" in n for n in notes)

    def test_sweep_regression_vs_previous_entry_fails(self):
        data = _trajectory()
        data["entries"][0]["sweep"] = _sweep(parallel_speedup=0.95)
        data["entries"][-1]["sweep"] = _sweep(parallel_speedup=0.87)
        regressions, _ = self._check(data)
        assert any("vs previous 0.95x" in r for r in regressions)

    def test_sweep_improvement_vs_previous_entry_passes(self):
        data = _trajectory()
        data["entries"][0]["sweep"] = _sweep(parallel_speedup=0.78)
        data["entries"][-1]["sweep"] = _sweep(parallel_speedup=0.95)
        regressions, notes = self._check(data)
        assert regressions == []
        assert any("vs previous 0.78x" in n for n in notes)

    def test_zero_min_sweep_speedup_disables_the_floor(self):
        data = _trajectory()
        data["entries"][-1]["sweep"] = _sweep(
            parallel_speedup=0.1, cpus=4, jobs=4
        )
        regressions, _ = self._check(data, min_sweep_speedup=0.0)
        assert regressions == []

    def test_sweep_speedup_floor_scaling(self):
        bench_gate = _bench_gate()
        assert bench_gate.sweep_speedup_floor(2.5, 8, 4) == 2.5
        assert bench_gate.sweep_speedup_floor(2.5, 4, 4) == 2.5
        assert bench_gate.sweep_speedup_floor(2.5, 2, 4) == pytest.approx(1.7)
        assert bench_gate.sweep_speedup_floor(2.5, 1, 4) == pytest.approx(0.85)

    def test_main_trajectory_mode(self, tmp_path, capsys):
        bench_gate = _bench_gate()
        good = _write(tmp_path, "good.json", _trajectory())
        assert bench_gate.main(["--trajectory", good]) == 0
        assert "bench_gate: pass (trajectory" in capsys.readouterr().out
        bad = _write(
            tmp_path, "bad.json", _trajectory(read_many_ops_per_sec=100.0)
        )
        assert bench_gate.main(["--trajectory", bad]) == 1
        assert "REGRESSION:" in capsys.readouterr().out


def test_committed_trajectory_passes_the_gate():
    """The default test run gates the committed BENCH_hotpath.json (ISSUE
    6 satellite: no ``REPRO_BENCH_GATE`` opt-in needed).  Pure arithmetic
    over recorded numbers — deterministic wherever the suite runs."""
    bench_gate = _bench_gate()
    baseline = os.path.join(
        os.path.dirname(__file__), "..", "..", "BENCH_hotpath.json"
    )
    assert bench_gate.main(["--trajectory", baseline, "--quiet"]) == 0
