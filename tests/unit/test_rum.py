"""Unit tests for RUM overhead accounting (the paper's Section 2)."""

from __future__ import annotations

import pytest

from repro.core.rum import (
    RUMAccumulator,
    RUMProfile,
    measure_workload,
    measure_workload_batched,
)
from repro.methods.unsorted_column import UnsortedColumn
from repro.storage.device import IOStats, SimulatedDevice
from repro.storage.layout import RECORD_BYTES
from repro.workloads.spec import Operation, OpKind

from tests.conftest import SMALL_BLOCK, sample_records


class TestAccumulator:
    def test_read_overhead_ratio(self):
        acc = RUMAccumulator()
        io = IOStats(reads=2, read_bytes=2 * 4096)
        acc.record_read(io, records_retrieved=1)
        assert acc.read_overhead == pytest.approx(2 * 4096 / RECORD_BYTES)

    def test_update_overhead_ratio(self):
        acc = RUMAccumulator()
        io = IOStats(writes=1, write_bytes=4096)
        acc.record_update(io)
        assert acc.update_overhead == pytest.approx(4096 / RECORD_BYTES)

    def test_miss_counts_one_intended_record(self):
        acc = RUMAccumulator()
        acc.record_read(IOStats(read_bytes=100), records_retrieved=0)
        assert acc.retrieved_bytes == RECORD_BYTES

    def test_range_retrieval_scales_denominator(self):
        acc = RUMAccumulator()
        acc.record_read(IOStats(read_bytes=4096), records_retrieved=100)
        assert acc.retrieved_bytes == 100 * RECORD_BYTES

    def test_no_reads_defaults_to_one(self):
        acc = RUMAccumulator()
        assert acc.read_overhead == 1.0
        assert acc.update_overhead == 1.0

    def test_aggregation_over_operations(self):
        acc = RUMAccumulator()
        acc.record_read(IOStats(read_bytes=64), records_retrieved=1)
        acc.record_read(IOStats(read_bytes=192), records_retrieved=1)
        # (64 + 192) / (2 * 16)
        assert acc.read_overhead == pytest.approx(256 / (2 * RECORD_BYTES))

    def test_flush_reads_amplify_uo_not_ro(self):
        """Deferred-maintenance reads (compaction re-reading runs) are
        physical update work: they belong in the UO numerator and must
        never leak into RO."""
        acc = RUMAccumulator()
        acc.record_update(IOStats(write_bytes=100), records_updated=1)
        acc.updated_bytes = 50
        acc.write_bytes = 100
        acc.flush_read_bytes = 50
        assert acc.update_overhead == pytest.approx((100 + 50) / 50)
        assert acc.read_overhead == 1.0  # no read op recorded


class TestProfile:
    def test_str_is_informative(self):
        profile = RUMProfile(2.0, 3.0, 1.5, name="x")
        assert "RO=2.00" in str(profile)
        assert "UO=3.00" in str(profile)
        assert "MO=1.50" in str(profile)

    def test_dominance(self):
        better = RUMProfile(1.0, 1.0, 1.0)
        worse = RUMProfile(2.0, 1.0, 1.0)
        assert better.dominates(worse)
        assert not worse.dominates(better)

    def test_equal_profiles_do_not_dominate(self):
        a = RUMProfile(1.0, 1.0, 1.0)
        b = RUMProfile(1.0, 1.0, 1.0)
        assert not a.dominates(b)

    def test_incomparable_profiles(self):
        a = RUMProfile(1.0, 3.0, 1.0)
        b = RUMProfile(3.0, 1.0, 1.0)
        assert not a.dominates(b)
        assert not b.dominates(a)


class TestMeasureWorkload:
    def _method(self):
        method = UnsortedColumn(SimulatedDevice(block_bytes=SMALL_BLOCK))
        method.bulk_load(sample_records(64))
        return method

    def test_point_queries_measured(self):
        method = self._method()
        ops = [Operation(OpKind.POINT_QUERY, 10)]
        profile = measure_workload(method, ops)
        assert profile.read_overhead >= 1.0
        assert profile.memory_overhead >= 1.0

    def test_inserts_measured(self):
        method = self._method()
        ops = [Operation(OpKind.INSERT, 1001, 5)]
        profile = measure_workload(method, ops)
        assert profile.update_overhead >= 1.0
        assert method.get(1001) == 5

    def test_updates_and_deletes(self):
        method = self._method()
        ops = [
            Operation(OpKind.UPDATE, 10, 999),
            Operation(OpKind.DELETE, 12),
        ]
        profile = measure_workload(method, ops)
        assert method.get(10) == 999
        assert method.get(12) is None
        assert profile.update_overhead > 0

    def test_missing_update_keys_skipped(self):
        method = self._method()
        ops = [Operation(OpKind.UPDATE, 777777, 1), Operation(OpKind.DELETE, 888888)]
        profile = measure_workload(method, ops)  # must not raise
        assert profile.update_overhead == 1.0  # nothing was written

    def test_range_query_measured(self):
        method = self._method()
        ops = [Operation(OpKind.RANGE_QUERY, 0, high_key=30)]
        profile = measure_workload(method, ops)
        assert profile.read_overhead >= 1.0

    def test_profile_names_method(self):
        method = self._method()
        profile = measure_workload(method, [])
        assert profile.name == "unsorted-column"

    def test_terminal_flush_reads_charged_to_uo(self):
        """Regression: the terminal flush used to drop its read bytes on
        the floor — a buffering method's compaction reads went uncharged.
        They must now appear in the UO numerator."""
        from repro.methods.lsm import LSMTree

        def build():
            method = LSMTree(
                SimulatedDevice(block_bytes=SMALL_BLOCK),
                memtable_records=32,
                size_ratio=3,
            )
            method.bulk_load(sample_records(200))
            method.flush()
            return method

        # 52 inserts: the 32nd flushes the memtable into a level-0 run,
        # so the *terminal* flush must merge with it — reading that run.
        ops = [Operation(OpKind.INSERT, 1001 + 2 * i, i) for i in range(52)]

        # Replay the identical run by hand to capture the flush I/O split.
        replica = build()
        write_bytes = 0
        for op in ops:
            before = replica.device.snapshot()
            replica.insert(op.key, op.value)
            write_bytes += replica.device.stats_since(before).write_bytes
        before = replica.device.snapshot()
        replica.flush()
        flush_io = replica.device.stats_since(before)
        assert flush_io.read_bytes > 0, "scenario must exercise merge reads"

        profile = measure_workload(build(), ops)
        updated = len(ops) * RECORD_BYTES
        assert profile.update_overhead == pytest.approx(
            (write_bytes + flush_io.write_bytes + flush_io.read_bytes) / updated
        )

    def test_audit_every_passes_on_healthy_method(self):
        method = self._method()
        ops = [Operation(OpKind.INSERT, 1001 + 2 * i, i) for i in range(10)]
        profile = measure_workload(method, ops, audit_every=2)
        assert profile.update_overhead >= 1.0

    def test_audit_every_raises_on_corruption(self):
        from repro.check import AuditError

        method = self._method()
        method._record_count += 3  # plant a counter drift
        ops = [Operation(OpKind.POINT_QUERY, 10)]
        with pytest.raises(AuditError) as excinfo:
            measure_workload(method, ops, audit_every=1)
        assert excinfo.value.method_name == "unsorted-column"
        assert excinfo.value.violations

    def test_audit_every_zero_skips_audits(self):
        method = self._method()
        method._record_count += 3  # corruption goes unnoticed when off
        ops = [Operation(OpKind.POINT_QUERY, 10)]
        measure_workload(method, ops)  # must not raise


class TestMeasureWorkloadBatched:
    def _method(self):
        method = UnsortedColumn(SimulatedDevice(block_bytes=SMALL_BLOCK))
        method.bulk_load(sample_records(64))
        return method

    def _ops(self):
        return (
            [Operation(OpKind.POINT_QUERY, 2 * i) for i in range(20)]
            + [Operation(OpKind.INSERT, 1001 + 2 * i, i) for i in range(20)]
            + [Operation(OpKind.UPDATE, 10, 999)]
            + [Operation(OpKind.RANGE_QUERY, 0, high_key=30)]
        )

    @staticmethod
    def _batched(ops, size):
        return [ops[i : i + size] for i in range(0, len(ops), size)]

    @pytest.mark.parametrize("size", [2, 5, 16, 17, 64])
    def test_profile_matches_per_op_loop(self, size):
        ops = self._ops()
        per_op = measure_workload(self._method(), ops)
        batched = measure_workload_batched(
            self._method(), self._batched(ops, size)
        )
        assert batched == per_op

    def test_accumulator_integers_match_per_op_loop(self):
        # Not just the final ratios: the integer numerators and
        # denominators behind them must telescope exactly.
        ops = self._ops()
        per_op_acc = RUMAccumulator()
        measure_workload(self._method(), ops, accumulator=per_op_acc)
        batched_acc = RUMAccumulator()
        measure_workload_batched(
            self._method(), self._batched(ops, 7), accumulator=batched_acc
        )
        for field in (
            "read_bytes",
            "retrieved_bytes",
            "write_bytes",
            "updated_bytes",
            "flush_read_bytes",
            "read_ops",
            "update_ops",
        ):
            assert getattr(batched_acc, field) == getattr(
                per_op_acc, field
            ), field

    def test_space_sampling_cadence_matches_per_op_loop(self):
        """Peak MO must come from the same sampling points: windows are
        split at every 16th operation, exactly where the per-op loop
        samples.  An insert-heavy stream makes the footprint grow, so a
        cadence mismatch would move the sampled peak."""
        ops = [Operation(OpKind.INSERT, 1001 + 2 * i, i) for i in range(100)]
        per_op = measure_workload(self._method(), ops)
        for size in (3, 16, 50, 100):
            batched = measure_workload_batched(
                self._method(), self._batched(ops, size)
            )
            assert batched.memory_overhead == per_op.memory_overhead

    def test_invalid_operation_raises_instead_of_skipping(self):
        # The tolerant per-op loop skips updates of absent keys; a batch
        # window's I/O cannot be re-attributed after a failure, so the
        # batched loop propagates the KeyError.
        ops = [Operation(OpKind.UPDATE, 777777, 1)]
        with pytest.raises(KeyError):
            measure_workload_batched(self._method(), [ops])

    def test_metrics_delegate_to_per_op_loop(self):
        # Per-op instrumentation cannot be amortized; with a metrics
        # sink supplied the batched entry point must produce the per-op
        # loop's histograms (by delegating to it).
        from repro.obs.metrics import WorkloadMetrics

        ops = self._ops()
        per_op_metrics = WorkloadMetrics()
        per_op = measure_workload(self._method(), ops, metrics=per_op_metrics)
        batched_metrics = WorkloadMetrics()
        batched = measure_workload_batched(
            self._method(), self._batched(ops, 8), metrics=batched_metrics
        )
        assert batched == per_op
        assert batched_metrics.labels() == per_op_metrics.labels()
        for label in per_op_metrics.labels():
            assert (
                batched_metrics.blocks[label].to_dict()
                == per_op_metrics.blocks[label].to_dict()
            ), label
            assert (
                batched_metrics.time[label].to_dict()
                == per_op_metrics.time[label].to_dict()
            ), label

    def test_audit_every_delegates_and_raises(self):
        from repro.check import AuditError

        method = self._method()
        method._record_count += 3  # plant a counter drift
        ops = [[Operation(OpKind.POINT_QUERY, 10)]]
        with pytest.raises(AuditError):
            measure_workload_batched(method, ops, audit_every=1)

    def test_empty_stream_yields_floor_profile(self):
        profile = measure_workload_batched(self._method(), [])
        assert profile.read_overhead == 1.0
        assert profile.update_overhead == 1.0
