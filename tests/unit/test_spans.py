"""Unit tests for ``repro.obs.spans`` — the hierarchical span system.

Covers the three layers in isolation and end to end:

* the collection primitives (``span``, ``spanned``, ``span_collection``):
  gating, nesting, exception safety, zero path leakage between scopes;
* :class:`SpanProfile` aggregation from synthetic event streams: tree
  shape, exclusive ``by_name`` tallies, space ownership, folded stacks;
* :func:`rum_attribution` exactness against a *real* measured workload:
  the audit list must come back empty, certifying that per-span RO/UO/MO
  fractions sum exactly to the aggregate profile.
"""

from __future__ import annotations

import pytest

from repro.core.registry import create_method
from repro.core.rum import RUMAccumulator
from repro.obs.spans import (
    Attribution,
    SpanProfile,
    current_span,
    rum_attribution,
    span,
    span_collection,
    spanned,
    spans_active,
)
from repro.obs.sinks import ListSink
from repro.obs.tracer import RecordingTracer
from repro.storage.device import SimulatedDevice
from repro.workloads.runner import run_workload
from repro.workloads.spec import WorkloadSpec

from tests.conftest import SMALL_BLOCK


def _event(span_path, op, *, source="d", block_id=0, sequential=False,
           cost=0.0, nbytes=0):
    return {
        "span": span_path, "source": source, "op": op, "block_id": block_id,
        "sequential": sequential, "cost": cost, "nbytes": nbytes,
    }


class TestCollectionPrimitives:
    def test_disabled_by_default(self):
        assert not spans_active()
        assert current_span() == ""
        with span("never"):
            assert current_span() == ""

    def test_nesting_builds_slash_paths(self):
        with span_collection():
            assert spans_active()
            with span("op.insert"):
                assert current_span() == "op.insert"
                with span("lsm.put"):
                    assert current_span() == "op.insert/lsm.put"
                assert current_span() == "op.insert"
        assert current_span() == ""

    def test_spanned_decorator_opens_and_closes(self):
        @spanned("phase")
        def observe():
            return current_span()

        assert observe() == ""  # disabled: plain tail-call
        with span_collection():
            assert observe() == "phase"
            with span("outer"):
                assert observe() == "outer/phase"
        assert observe.__span_name__ == "phase"
        assert observe.__name__ == "observe"

    def test_spanned_restores_path_on_exception(self):
        @spanned("boom")
        def explode():
            raise RuntimeError("mid-span failure")

        with span_collection():
            with pytest.raises(RuntimeError):
                explode()
            assert current_span() == ""

    def test_collection_scopes_nest_and_reset(self):
        with span_collection():
            with span("outer"):
                with span_collection():
                    # A fresh scope never inherits the enclosing path.
                    assert current_span() == ""
                assert current_span() == "outer"
        assert not spans_active()

    def test_span_with_device_captures_io_delta(self):
        device = SimulatedDevice(block_bytes=SMALL_BLOCK)
        block = device.allocate()
        with span("phase", device=device) as opened:
            device.write(block, "x", used_bytes=8)
            device.read(block)
        assert opened.io.reads == 1
        assert opened.io.writes == 1
        assert opened.io.read_bytes == SMALL_BLOCK


class TestSpanProfile:
    def test_tree_shape_and_direct_stats(self):
        profile = SpanProfile.from_events([
            _event("op.insert", "read", nbytes=256, cost=1.0),
            _event("op.insert/lsm.put", "write", nbytes=256, cost=2.0),
            _event("", "alloc"),
        ])
        root = profile.roots["op.insert"]
        assert root.stats.read_bytes == 256 and root.stats.write_bytes == 0
        assert root.children["lsm.put"].stats.write_bytes == 256
        assert root.total().write_bytes == 256
        assert root.total().simulated_time == 3.0
        assert profile.roots["(unspanned)"].stats.allocs == 1

    def test_by_name_is_exclusive_across_nested_occurrences(self):
        profile = SpanProfile.from_events([
            _event("op.insert/c.L0", "write", nbytes=100),
            _event("op.insert/c.L0/c.L1", "write", nbytes=40),
        ])
        merged = profile.by_name()
        assert merged["c.L0"].write_bytes == 100  # not 140: no double count
        assert merged["c.L1"].write_bytes == 40

    def test_space_ownership_follows_alloc_and_free(self):
        profile = SpanProfile.from_events([
            _event("op.insert", "alloc", block_id=1),
            _event("op.insert", "alloc", block_id=2),
            _event("op.insert", "write", block_id=1, nbytes=256),
            _event("op.delete", "free", block_id=1),
            _event("op.delete", "free", block_id=99),  # pre-tracing block
        ])
        node = profile.roots["op.insert"]
        assert node.live_blocks == {"d": 1}
        assert profile.live_bytes_of(node) == 256
        assert profile.untracked_frees == {"d": 1}

    def test_folded_lines_weights(self):
        profile = SpanProfile.from_events([
            _event("a/b", "read", nbytes=100, cost=0.5),
            _event("a", "write", nbytes=40, cost=1.0),
        ])
        assert profile.folded_lines("bytes") == ["a 40", "a;b 100"]
        assert profile.folded_lines("events") == ["a 1", "a;b 1"]
        assert profile.folded_lines("time") == ["a 1000", "a;b 500"]
        with pytest.raises(ValueError):
            profile.folded_lines("calories")

    def test_profile_from_dicts_equals_profile_from_events(self):
        sink = ListSink()
        device = SimulatedDevice(block_bytes=SMALL_BLOCK)
        device.set_tracer(RecordingTracer(sink))
        with span_collection():
            with span("op.insert"):
                block = device.allocate()
                device.write(block, "x", used_bytes=8)
        from_events = SpanProfile.from_events(sink.events)
        from_dicts = SpanProfile.from_events(
            [event.to_dict() for event in sink.events]
        )
        assert from_events.to_dict() == from_dicts.to_dict()


#: Representative methods for end-to-end attribution: one per major
#: structure family the tentpole instrumented.
ATTRIBUTED_METHODS = (
    "btree", "lsm", "hash-index", "sorted-column", "unsorted-column",
    "zonemap", "skiplist", "trie", "indexed-log",
)


class TestRumAttribution:
    SPEC = WorkloadSpec(
        point_queries=0.3, range_queries=0.1, inserts=0.3,
        updates=0.2, deletes=0.1, operations=250, initial_records=600,
    )

    def _attribution(self, method_name):
        sink = ListSink()
        device = SimulatedDevice(block_bytes=SMALL_BLOCK)
        device.set_tracer(RecordingTracer(sink))
        method = create_method(method_name, device=device)
        accumulator = RUMAccumulator()
        with span_collection():
            result = run_workload(method, self.SPEC, accumulator=accumulator)
        profile = SpanProfile.from_events(sink.events)
        return result, rum_attribution(
            profile,
            accumulator,
            base_bytes=method.base_bytes(),
            space_bytes=method.space_bytes(),
            allocated_bytes=device.allocated_bytes,
            memory_overhead=result.profile.memory_overhead,
        )

    @pytest.mark.parametrize("method_name", ATTRIBUTED_METHODS)
    def test_attribution_is_exact_for_every_instrumented_method(
        self, method_name
    ):
        result, attribution = self._attribution(method_name)
        assert attribution.audit == [], "\n".join(attribution.audit)
        assert attribution.read_overhead == result.profile.read_overhead
        assert attribution.update_overhead == result.profile.update_overhead
        assert attribution.memory_overhead == result.profile.memory_overhead

    def test_root_fractions_sum_to_aggregates(self):
        result, attribution = self._attribution("btree")
        roots = [row for row in attribution.rows if row.depth == 0]
        assert sum(row.ro for row in roots) == result.profile.read_overhead
        assert sum(row.uo for row in roots) == result.profile.update_overhead
        assert sum(row.mo for row in roots) == result.profile.memory_overhead

    def test_descent_reads_during_updates_charge_neither_ro_nor_uo(self):
        _result, attribution = self._attribution("btree")
        insert_rows = [
            row for row in attribution.rows
            if row.path.startswith("op.insert") and row.depth > 0
        ]
        assert any(row.read_bytes > 0 for row in insert_rows)
        assert all(row.ro == 0.0 for row in insert_rows)

    def test_synthetic_buckets_are_labelled(self):
        _result, attribution = self._attribution("lsm")
        paths = [row.path for row in attribution.rows]
        assert Attribution.NON_DEVICE in paths
        assert Attribution.PEAK_HEADROOM in paths
