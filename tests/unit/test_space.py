"""Unit tests for the RUM triangle geometry (Figures 1 and 3)."""

from __future__ import annotations

import math

import pytest

from repro.core.rum import RUMProfile
from repro.core.space import (
    CORNER_READ,
    CORNER_SPACE,
    CORNER_WRITE,
    barycentric_weights,
    corner_affinity,
    goodness,
    nearest_corner,
    project,
)


class TestGoodness:
    def test_optimal_overhead_is_one(self):
        assert goodness(1.0) == 1.0

    def test_larger_overhead_means_less_good(self):
        assert goodness(2.0) == 0.5
        assert goodness(10.0) == pytest.approx(0.1)

    def test_infinite_overhead_is_zero(self):
        assert goodness(float("inf")) == 0.0

    def test_nan_is_zero(self):
        assert goodness(float("nan")) == 0.0

    def test_sub_one_clamped(self):
        assert goodness(0.5) == 1.0


class TestProjection:
    def test_read_optimal_lands_on_read_corner(self):
        profile = RUMProfile(1.0, 1e12, 1e12)
        assert nearest_corner(profile) == CORNER_READ
        point = project(profile)
        assert point.distance_to(CORNER_READ) < 0.01

    def test_write_optimal_lands_on_write_corner(self):
        profile = RUMProfile(1e12, 1.0, 1e12)
        assert nearest_corner(profile) == CORNER_WRITE

    def test_space_optimal_lands_on_space_corner(self):
        profile = RUMProfile(1e12, 1e12, 1.0)
        assert nearest_corner(profile) == CORNER_SPACE

    def test_balanced_profile_lands_in_center(self):
        profile = RUMProfile(2.0, 2.0, 2.0)
        point = project(profile)
        # The centroid of the unit triangle.
        assert point.x == pytest.approx(0.5)
        assert point.y == pytest.approx(math.sqrt(3) / 6, rel=1e-6)

    def test_all_infinite_lands_in_center(self):
        inf = float("inf")
        point = project(RUMProfile(inf, inf, inf))
        assert point.x == pytest.approx(0.5)

    def test_weights_sum_to_one(self):
        profile = RUMProfile(1.5, 7.0, 3.0)
        weights = barycentric_weights(profile)
        assert sum(weights) == pytest.approx(1.0)

    def test_point_inside_triangle(self):
        profile = RUMProfile(1.5, 7.0, 3.0)
        point = project(profile)
        assert 0.0 <= point.x <= 1.0
        assert 0.0 <= point.y <= math.sqrt(3) / 2 + 1e-9

    def test_project_uses_profile_name(self):
        profile = RUMProfile(1.0, 2.0, 3.0, name="thing")
        assert project(profile).name == "thing"
        assert project(profile, name="override").name == "override"


class TestAffinity:
    def test_affinity_keys(self):
        affinity = corner_affinity(RUMProfile(1.0, 2.0, 4.0))
        assert set(affinity) == {CORNER_READ, CORNER_WRITE, CORNER_SPACE}

    def test_read_heavy_affinity_ordering(self):
        affinity = corner_affinity(RUMProfile(1.0, 4.0, 4.0))
        assert affinity[CORNER_READ] > affinity[CORNER_WRITE]
        assert affinity[CORNER_READ] > affinity[CORNER_SPACE]
