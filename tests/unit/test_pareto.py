"""Unit tests for the Pareto-frontier analysis."""

from __future__ import annotations

import pytest

from repro.analysis.pareto import (
    dominated_by,
    frontier_span,
    pareto_frontier,
    sacrifice,
)
from repro.core.rum import RUMProfile


def profiles():
    return {
        "reader": RUMProfile(1.0, 50.0, 20.0),
        "writer": RUMProfile(50.0, 1.0, 20.0),
        "saver": RUMProfile(50.0, 20.0, 1.0),
        "loser": RUMProfile(60.0, 60.0, 25.0),  # dominated by everyone
        "balanced": RUMProfile(10.0, 10.0, 5.0),
    }


class TestFrontier:
    def test_specialists_on_frontier(self):
        frontier = pareto_frontier(profiles())
        assert {"reader", "writer", "saver", "balanced"} <= set(frontier)

    def test_dominated_profile_excluded(self):
        assert "loser" not in pareto_frontier(profiles())

    def test_dominated_by(self):
        dominators = dominated_by(profiles(), "loser")
        assert "reader" in dominators and "balanced" in dominators

    def test_dominated_by_unknown_name(self):
        with pytest.raises(KeyError):
            dominated_by(profiles(), "ghost")

    def test_nobody_dominates_a_specialist(self):
        assert dominated_by(profiles(), "reader") == []

    def test_empty_input(self):
        assert pareto_frontier({}) == []
        assert frontier_span({}) == {}


class TestSacrifice:
    def test_identifies_largest_overhead(self):
        axis, value = sacrifice(RUMProfile(1.0, 50.0, 20.0))
        assert axis == "update"
        assert value == 50.0

    def test_memory_sacrifice(self):
        axis, _ = sacrifice(RUMProfile(2.0, 2.0, 99.0))
        assert axis == "memory"


class TestSpan:
    def test_span_covers_specialist_extremes(self):
        span = frontier_span(profiles())
        assert span["read"][0] == 1.0
        assert span["update"][0] == 1.0
        assert span["memory"][0] == 1.0
        assert span["read"][1] >= 50.0
