"""Unit tests for the tunable access method and the dynamic tuner."""

from __future__ import annotations

import pytest

from repro.core.rum import measure_workload
from repro.core.tuner import DynamicTuner, TunableAccessMethod, TunerPolicy
from repro.storage.device import SimulatedDevice
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.spec import WorkloadSpec

from tests.conftest import SMALL_BLOCK, sample_records


def tunable(r=0.5, w=0.5):
    return TunableAccessMethod(
        SimulatedDevice(block_bytes=SMALL_BLOCK),
        read_optimization=r,
        write_optimization=w,
    )


def measure(r, w, spec):
    method = tunable(r, w)
    generator = WorkloadGenerator(spec)
    method.bulk_load(generator.initial_data())
    return measure_workload(method, generator.operations())


class TestKnobs:
    def test_knob_validation(self):
        with pytest.raises(ValueError):
            tunable(r=1.5)
        with pytest.raises(ValueError):
            tunable(w=-0.1)

    def test_fence_stride_follows_read_knob(self):
        assert tunable(r=0.0).fence_stride is None
        assert tunable(r=1.0).fence_stride == 1
        assert tunable(r=0.1).fence_stride == 10

    def test_buffer_grows_with_write_knob(self):
        assert tunable(w=1.0).buffer_capacity > tunable(w=0.0).buffer_capacity

    def test_bloom_only_at_high_read_optimization(self):
        assert tunable(r=0.9).bloom_enabled
        assert not tunable(r=0.5).bloom_enabled


class TestRUMMovement:
    SPEC = WorkloadSpec(
        point_queries=0.4,
        range_queries=0.1,
        inserts=0.3,
        updates=0.15,
        deletes=0.05,
        operations=400,
        initial_records=3000,
    )

    def test_read_knob_lowers_ro_and_raises_mo(self):
        low = measure(0.0, 0.3, self.SPEC)
        high = measure(1.0, 0.3, self.SPEC)
        assert high.read_overhead < low.read_overhead
        assert high.memory_overhead > low.memory_overhead

    def test_write_knob_lowers_uo(self):
        low = measure(0.3, 0.0, self.SPEC)
        high = measure(0.3, 1.0, self.SPEC)
        assert high.update_overhead < low.update_overhead

    def test_correctness_at_extremes(self):
        for r, w in ((0.0, 0.0), (1.0, 0.0), (0.0, 1.0), (1.0, 1.0)):
            method = tunable(r, w)
            records = sample_records(300)
            method.bulk_load(records)
            method.insert(9999, 1)
            method.update(10, 111)
            method.delete(12)
            assert method.get(9999) == 1
            assert method.get(10) == 111
            assert method.get(12) is None
            survivors = dict(records)
            survivors[10] = 111
            survivors[9999] = 1
            del survivors[12]
            assert method.range_query(-1, 10**9) == sorted(survivors.items())

    def test_knobs_can_change_mid_flight(self):
        method = tunable(0.2, 0.8)
        records = sample_records(300)
        method.bulk_load(records)
        method.insert(10_001, 1)
        method.set_knobs(0.9, 0.1)
        assert method.get(10_001) == 1
        assert method.get(100) == 1001


class TestDynamicTuner:
    def test_read_heavy_traffic_raises_read_knob(self):
        method = tunable(0.5, 0.5)
        method.bulk_load(sample_records(200))
        tuner = DynamicTuner(method, TunerPolicy(window=50, step=0.2))
        for _ in range(120):
            tuner.observe_read()
        assert method.read_optimization > 0.5
        assert method.write_optimization < 0.5

    def test_write_heavy_traffic_raises_write_knob(self):
        method = tunable(0.5, 0.5)
        method.bulk_load(sample_records(200))
        tuner = DynamicTuner(method, TunerPolicy(window=50, step=0.2))
        for _ in range(120):
            tuner.observe_write()
        assert method.write_optimization > 0.5
        assert method.read_optimization < 0.5

    def test_memory_budget_caps_read_knob(self):
        method = tunable(1.0, 0.5)
        method.bulk_load(sample_records(200))
        tuner = DynamicTuner(
            method, TunerPolicy(window=10, step=0.2, memory_budget=1.0)
        )
        for _ in range(40):
            tuner.observe_read()
        # Budget of 1.0 is unachievable with aux structures; the tuner
        # must have pushed the read knob down at least once.
        assert any(r < 1.0 for r, _ in tuner.adjustments)

    def test_adjustments_recorded(self):
        method = tunable()
        method.bulk_load(sample_records(100))
        tuner = DynamicTuner(method, TunerPolicy(window=25))
        for _ in range(100):
            tuner.observe_read()
        assert len(tuner.adjustments) == 4
