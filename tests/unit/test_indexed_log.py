"""Structure-specific tests for the indexed log (Section 5 roadmap)."""

from __future__ import annotations

import pytest

from repro.methods.extremes import AppendOnlyLog
from repro.methods.indexed_log import IndexedLog
from repro.storage.device import SimulatedDevice
from repro.storage.layout import RECORD_BYTES

from tests.conftest import SMALL_BLOCK, sample_records


def make(**kwargs):
    defaults = dict(segment_records=32, compact_segments=None)
    defaults.update(kwargs)
    return IndexedLog(SimulatedDevice(block_bytes=SMALL_BLOCK), **defaults)


class TestAppendBehaviour:
    def test_writes_stay_near_append_floor(self):
        log = make()
        log.bulk_load(sample_records(64))
        before = log.device.snapshot()
        for i in range(256):
            log.update(2 * (i % 64), i)
        log.flush()
        io = log.device.stats_since(before)
        # 256 updates of 16 bytes each; appends batch into blocks, plus a
        # filter block per segment: well under 2x amplification.
        amplification = io.write_bytes / (256 * RECORD_BYTES)
        assert amplification < 2.5

    def test_segments_accumulate(self):
        log = make(segment_records=16)
        log.bulk_load(sample_records(64))
        segments_before = log.segments
        for i in range(64):
            log.update(2 * (i % 64), i)
        assert log.segments > segments_before


class TestProbabilisticSkipping:
    def test_filters_cut_point_read_cost(self):
        import random

        reads = {}
        for bits in (0, 10):
            # Multi-block segments (64 records = 4 blocks): a filter
            # probe (1 block) must be cheaper than the binary search it
            # replaces, which single-block segments would not show.
            log = make(segment_records=64, bloom_bits_per_key=bits)
            log.bulk_load(sample_records(256))
            # Random update keys: every sealed segment spans most of the
            # key space, so zone pruning is useless and filters must do
            # the skipping (sequential updates would give disjoint zones
            # and hide the filters' value).
            rng = random.Random(5)
            for i in range(256):
                log.update(2 * rng.randrange(256), i)
            log.flush()
            log.device.reset_counters()
            for key in range(0, 512, 7):  # mix of hits and misses
                log.get(key)
            reads[bits] = log.device.counters.reads
        assert reads[10] < reads[0]

    def test_filters_cost_space(self):
        spaces = {}
        for bits in (0, 10):
            log = make(segment_records=16, bloom_bits_per_key=bits)
            log.bulk_load(sample_records(256))
            log.flush()
            spaces[bits] = log.space_bytes()
        assert spaces[10] > spaces[0]
        assert make(bloom_bits_per_key=0).filter_bytes() == 0

    def test_beats_plain_log_on_reads(self):
        indexed = make(segment_records=16)
        plain = AppendOnlyLog()
        records = sample_records(128)
        indexed.bulk_load(records)
        plain.bulk_load(records)
        for method in (indexed, plain):
            method.device.reset_counters()
            for key in range(0, 256, 5):
                method.get(key)
        # Same UO discipline, far fewer bytes read.
        assert (
            indexed.device.counters.read_bytes
            < plain.device.counters.read_bytes / 3
        )


class TestCompaction:
    def test_compaction_bounds_segments(self):
        log = make(segment_records=16, compact_segments=4)
        log.bulk_load(sample_records(64))
        for i in range(400):
            log.update(2 * (i % 64), i)
        assert log.segments < 10

    def test_compaction_preserves_contents(self):
        log = make(segment_records=8, compact_segments=3)
        records = sample_records(60)
        log.bulk_load(records)
        oracle = dict(records)
        for i in range(120):
            key = 2 * (i % 60)
            if i % 10 == 3 and key in oracle:
                log.delete(key)
                del oracle[key]
            elif key in oracle:
                oracle[key] = i
                log.update(key, i)
            else:
                log.insert(key, i)
                oracle[key] = i
        log.flush()
        assert log.range_query(-1, 10**9) == sorted(oracle.items())

    def test_compaction_drops_tombstones_and_duplicates(self):
        log = make(segment_records=8, compact_segments=None)
        log.bulk_load(sample_records(32))
        # Several rounds of full-key updates: the older segments are
        # pure stale versions.  The delete lands mid-history so its
        # tombstone sits in the old half by the time we compact.
        for round_number in range(3):
            for key in range(0, 64, 2):
                log.update(key, round_number)
            if round_number == 0:
                log.delete(2)
                log.insert(2, 999)
                log.update(2, 1000)
        log.flush()
        blocks_before = log.device.allocated_blocks
        log.compact()
        log.compact()
        log.compact()
        assert log.device.allocated_blocks < blocks_before
        # Rounds 1 and 2 re-updated every key, so the last round wins.
        assert log.get(0) == 2
        assert log.get(2) == 2
        assert log.get(4) == 2

    def test_explicit_compact_on_tiny_log(self):
        log = make()
        log.bulk_load(sample_records(4))
        log.compact()  # no-op with < 2 segments
        assert log.get(0) == 1


class TestValidation:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            make(segment_records=0)
        with pytest.raises(ValueError):
            make(bloom_bits_per_key=-1)
        with pytest.raises(ValueError):
            make(compact_segments=1)
