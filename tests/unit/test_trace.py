"""Unit tests for workload traces (save/replay)."""

from __future__ import annotations

import pytest

from repro.core.registry import create_method
from repro.core.rum import measure_workload
from repro.storage.device import SimulatedDevice
from repro.workloads.generator import generate_operations
from repro.workloads.spec import MIXES, Operation, OpKind
from repro.workloads.trace import load_trace, save_trace

from tests.conftest import SMALL_BLOCK


@pytest.fixture
def trace_path(tmp_path):
    return str(tmp_path / "workload.trace")


def _spec():
    return MIXES["balanced"].scaled(initial_records=300, operations=120)


class TestRoundTrip:
    def test_data_and_operations_survive(self, trace_path):
        data, operations = generate_operations(_spec())
        save_trace(trace_path, data, operations)
        loaded_data, loaded_operations = load_trace(trace_path)
        assert loaded_data == data
        assert loaded_operations == operations

    def test_replay_gives_identical_profile(self, trace_path):
        data, operations = generate_operations(_spec())
        save_trace(trace_path, data, operations)

        def run(dataset, stream):
            method = create_method(
                "btree", device=SimulatedDevice(block_bytes=SMALL_BLOCK)
            )
            method.bulk_load(dataset)
            return measure_workload(method, stream)

        original = run(data, operations)
        loaded_data, loaded_operations = load_trace(trace_path)
        replayed = run(loaded_data, loaded_operations)
        assert replayed == original

    def test_all_operation_kinds_encode(self, trace_path):
        operations = [
            Operation(OpKind.POINT_QUERY, 5),
            Operation(OpKind.RANGE_QUERY, 2, high_key=9),
            Operation(OpKind.INSERT, 11, value=110),
            Operation(OpKind.UPDATE, 5, value=7),
            Operation(OpKind.DELETE, 2),
        ]
        save_trace(trace_path, [(1, 1)], operations)
        _, loaded = load_trace(trace_path)
        assert loaded == operations


class TestValidation:
    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.trace"
        path.write_text("")
        with pytest.raises(ValueError):
            load_trace(str(path))

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text('{"trace": 99}\n')
        with pytest.raises(ValueError):
            load_trace(str(path))

    def test_malformed_entry_rejected(self, tmp_path):
        path = tmp_path / "mal.trace"
        path.write_text('{"trace": 1}\n{"op": "nope", "k": 1}\n')
        with pytest.raises(ValueError):
            load_trace(str(path))

    def test_blank_lines_tolerated(self, tmp_path):
        path = tmp_path / "blank.trace"
        path.write_text('{"trace": 1}\n\n{"r": [1, 2]}\n\n')
        data, operations = load_trace(str(path))
        assert data == [(1, 2)]
        assert operations == []
