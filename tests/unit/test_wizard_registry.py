"""Unit tests for the method registry and the access-method wizard."""

from __future__ import annotations

import math

import pytest

from repro.core.registry import available_methods, create_method, register_method
from repro.core.rum import RUMProfile
from repro.core.wizard import (
    HardwarePriorities,
    Recommendation,
    recommend,
    score_profile,
    workload_weights,
)
from repro.workloads.spec import MIXES, WorkloadSpec


class TestRegistry:
    def test_known_methods_present(self):
        names = available_methods()
        for expected in ("btree", "lsm", "hash-index", "zonemap", "sorted-column",
                         "unsorted-column", "tunable", "cracking"):
            assert expected in names

    def test_create_by_name(self):
        method = create_method("btree")
        assert method.name == "btree"

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError) as excinfo:
            create_method("nonexistent")
        assert "btree" in str(excinfo.value)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_method("btree", lambda: None)

    def test_kwargs_forwarded(self):
        method = create_method("lsm", size_ratio=7)
        assert method.size_ratio == 7


class TestScoring:
    def test_weights_follow_mix(self):
        read_heavy = workload_weights(MIXES["read-only"])
        write_heavy = workload_weights(MIXES["write-heavy"])
        assert read_heavy[0] > write_heavy[0]
        assert read_heavy[1] < write_heavy[1]

    def test_score_prefers_lower_overheads(self):
        spec = MIXES["balanced"]
        good = RUMProfile(2.0, 2.0, 1.2)
        bad = RUMProfile(20.0, 20.0, 3.0)
        priorities = HardwarePriorities()
        assert score_profile(good, spec, priorities) < score_profile(bad, spec, priorities)

    def test_flash_priorities_punish_writes(self):
        spec = MIXES["balanced"]
        writey = RUMProfile(2.0, 50.0, 1.2)
        ready = RUMProfile(50.0, 2.0, 1.2)
        neutral = HardwarePriorities()
        flash = HardwarePriorities.flash()
        # Under flash priorities the write-heavy profile loses more
        # ground than under neutral priorities.
        neutral_gap = score_profile(writey, spec, neutral) - score_profile(ready, spec, neutral)
        flash_gap = score_profile(writey, spec, flash) - score_profile(ready, spec, flash)
        assert flash_gap > neutral_gap

    def test_infinite_overhead_is_disqualifying(self):
        spec = MIXES["balanced"]
        profile = RUMProfile(float("inf"), 1.0, 1.0)
        assert score_profile(profile, spec, HardwarePriorities()) == float("inf")


class TestRecommend:
    def test_returns_sorted_recommendations(self):
        spec = MIXES["balanced"].scaled(initial_records=400, operations=60)
        recs = recommend(spec, sample_records=400, sample_operations=60)
        assert len(recs) > 5
        scores = [rec.score for rec in recs]
        assert scores == sorted(scores)

    def test_candidate_filter(self):
        spec = MIXES["balanced"].scaled(initial_records=300, operations=40)
        recs = recommend(
            spec,
            candidates=["btree", "lsm"],
            sample_records=300,
            sample_operations=40,
        )
        assert {rec.method for rec in recs} == {"btree", "lsm"}

    def test_write_heavy_prefers_differential(self):
        spec = WorkloadSpec(
            point_queries=0.05,
            inserts=0.65,
            updates=0.3,
            operations=300,
            initial_records=1500,
        )
        recs = recommend(spec, sample_records=1500, sample_operations=300)
        top3 = {rec.method for rec in recs[:3]}
        differential = {"lsm", "masm", "pdt", "tunable", "pbt", "append-log", "cracking"}
        assert top3 & differential, f"expected a differential method in {top3}"

    def test_rationale_populated(self):
        spec = MIXES["balanced"].scaled(initial_records=200, operations=30)
        recs = recommend(spec, candidates=["btree"], sample_records=200, sample_operations=30)
        assert "overhead" in recs[0].rationale


class TestAnalyticWizard:
    def test_classification_covers_every_rankable_method(self):
        from repro.core.wizard import CLASSIFICATION, _EXCLUDED

        rankable = set(available_methods()) - _EXCLUDED
        assert rankable <= set(CLASSIFICATION), rankable - set(CLASSIFICATION)

    def test_analytic_prefers_differential_for_writes(self):
        from repro.core.wizard import recommend_analytic

        spec = WorkloadSpec(
            point_queries=0.05, inserts=0.7, updates=0.25, operations=100
        )
        recs = recommend_analytic(spec)
        assert recs[0].method in ("lsm", "indexed-log", "masm", "append-log")

    def test_analytic_prefers_readers_for_reads(self):
        from repro.core.wizard import recommend_analytic

        spec = WorkloadSpec(point_queries=1.0, operations=100)
        recs = recommend_analytic(spec)
        assert recs[0].method in ("hash-index", "btree", "pdt")

    def test_memory_priority_shifts_ranking(self):
        from repro.core.wizard import recommend_analytic

        spec = MIXES["balanced"]
        neutral = recommend_analytic(spec)
        lean = recommend_analytic(spec, HardwarePriorities.memory_constrained())
        neutral_rank = [rec.method for rec in neutral]
        lean_rank = [rec.method for rec in lean]
        # Space-lean structures move up under memory pressure.
        assert lean_rank.index("sorted-column") < neutral_rank.index("sorted-column")

    def test_range_heavy_prefers_ordered_structures(self):
        from repro.core.wizard import recommend_analytic

        spec = MIXES["scan-heavy"]
        recs = recommend_analytic(spec)
        ranking = [rec.method for rec in recs]
        # Ordered structures top the list; the unordered hash (range =
        # full scan) must rank far below them.
        assert ranking[0] in ("btree", "fractured-mirrors", "sorted-column")
        assert ranking.index("hash-index") > ranking.index("btree")
        assert ranking.index("hash-index") > ranking.index("sorted-column")

    def test_unknown_candidate_rejected(self):
        from repro.core.wizard import recommend_analytic

        with pytest.raises(KeyError):
            recommend_analytic(MIXES["balanced"], candidates=["ghost"])

    def test_analytic_agrees_with_empirical_on_extremes(self):
        from repro.core.wizard import recommend_analytic

        # For a strongly write-heavy workload, the analytic top-3 and
        # the measured top-3 should overlap: the classification study
        # reflects measured reality.
        spec = WorkloadSpec(
            point_queries=0.05,
            inserts=0.65,
            updates=0.3,
            operations=300,
            initial_records=1500,
        )
        analytic_top = {rec.method for rec in recommend_analytic(spec)[:4]}
        measured_top = {
            rec.method
            for rec in recommend(spec, sample_records=1500, sample_operations=300)[:4]
        }
        assert analytic_top & measured_top
