"""Structure-specific tests for the cache-oblivious vEB tree (§4)."""

from __future__ import annotations

import random

import pytest

from repro.methods.cache_oblivious import CacheObliviousTree
from repro.storage.device import SimulatedDevice

from tests.conftest import SMALL_BLOCK, sample_records


def make(**kwargs):
    return CacheObliviousTree(SimulatedDevice(block_bytes=SMALL_BLOCK), **kwargs)


class TestLayout:
    def test_path_locality(self):
        """A root-to-leaf walk touches far fewer blocks than nodes."""
        tree = make()
        n = 4096
        tree.bulk_load([(2 * i, i) for i in range(n)])
        rng = random.Random(7)
        before = tree.device.snapshot()
        probes = 40
        for _ in range(probes):
            tree.get(2 * rng.randrange(n))
        reads = tree.device.stats_since(before).reads / probes
        # 12 levels deep; vEB packs runs of levels per block.
        assert reads < 8

    def test_adapts_across_block_sizes_without_knobs(self):
        costs = {}
        for block_bytes in (64, 1024):
            tree = CacheObliviousTree(SimulatedDevice(block_bytes=block_bytes))
            tree.bulk_load([(2 * i, i) for i in range(4096)])
            rng = random.Random(7)
            before = tree.device.snapshot()
            for _ in range(40):
                tree.get(2 * rng.randrange(4096))
            costs[block_bytes] = tree.device.stats_since(before).reads
        assert costs[1024] < costs[64] / 2

    def test_veb_order_is_a_permutation(self):
        tree = make()
        records = sample_records(500)
        tree.bulk_load(records)
        # Every record reachable => placement covered all nodes exactly once.
        for key, value in records:
            assert tree.get(key) == value

    def test_single_and_empty(self):
        tree = make()
        tree.bulk_load([])
        assert tree.get(1) is None
        tree.insert(1, 10)
        assert tree.get(1) == 10


class TestStaticMutability:
    def test_overflow_absorbs_inserts(self):
        tree = make(rebuild_fraction=100.0)  # never rebuild
        tree.bulk_load(sample_records(100))
        for i in range(20):
            tree.insert(1001 + 2 * i, i)
        assert tree.get(1003) == 1
        assert len(tree) == 120

    def test_rebuild_folds_overflow_and_tombstones(self):
        tree = make(rebuild_fraction=100.0)
        tree.bulk_load(sample_records(100))
        tree.insert(1001, 7)
        tree.delete(10)
        blocks_before = tree.device.allocated_blocks
        tree.rebuild()
        assert tree.get(1001) == 7
        assert tree.get(10) is None
        assert len(tree._overflow) == 0
        # Rebuild reconstructs a fresh compact layout.
        assert tree.device.allocated_blocks <= blocks_before + 1

    def test_auto_rebuild_threshold(self):
        tree = make(rebuild_fraction=0.1)
        tree.bulk_load(sample_records(100))
        for i in range(30):
            tree.insert(1001 + 2 * i, i)
        assert len(tree._overflow) < 30  # a rebuild happened

    def test_update_in_place_writes_one_block(self):
        tree = make()
        tree.bulk_load(sample_records(256))
        before = tree.device.snapshot()
        tree.update(100, 9)
        io = tree.device.stats_since(before)
        assert io.writes == 1

    def test_delete_then_reinsert(self):
        tree = make()
        tree.bulk_load(sample_records(50))
        tree.delete(20)
        assert tree.get(20) is None
        tree.insert(20, 777)
        assert tree.get(20) == 777

    def test_validation(self):
        with pytest.raises(ValueError):
            make(rebuild_fraction=0)
