"""Structure-specific tests for the skip list and the two columns."""

from __future__ import annotations

import random

import pytest

from repro.methods.skiplist import SkipList
from repro.methods.sorted_column import SortedColumn
from repro.methods.unsorted_column import UnsortedColumn
from repro.storage.device import SimulatedDevice

from tests.conftest import SMALL_BLOCK, sample_records


def skiplist(**kwargs):
    return SkipList(SimulatedDevice(block_bytes=SMALL_BLOCK), **kwargs)


def sorted_column(**kwargs):
    defaults = dict(sort_memory_blocks=4)
    defaults.update(kwargs)
    return SortedColumn(SimulatedDevice(block_bytes=SMALL_BLOCK), **defaults)


def unsorted_column():
    return UnsortedColumn(SimulatedDevice(block_bytes=SMALL_BLOCK))


class TestSkipList:
    def test_deterministic_given_seed(self):
        a, b = skiplist(seed=9), skiplist(seed=9)
        for s in (a, b):
            s.bulk_load(sample_records(200))
        assert a.device.allocated_blocks == b.device.allocated_blocks

    def test_search_sublinear(self):
        costs = {}
        for n in (100, 1600):
            s = skiplist()
            s.bulk_load(sample_records(n))
            before = s.device.snapshot()
            for key in range(0, 2 * n, n // 4):
                s.get(key)
            costs[n] = s.device.stats_since(before).reads
        # 16x data, far less than 16x cost.
        assert costs[1600] < costs[100] * 6

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            skiplist(probability=0.0)
        with pytest.raises(ValueError):
            skiplist(max_height=0)

    def test_local_insert_touches_few_blocks(self):
        s = skiplist()
        s.bulk_load(sample_records(500))
        before = s.device.snapshot()
        s.insert(501, 1)
        io = s.device.stats_since(before)
        # Writes touch only the blocks holding the new node + predecessors.
        assert io.writes <= 8

    def test_slot_reuse_after_delete(self):
        s = skiplist()
        s.bulk_load(sample_records(100))
        blocks = s.device.allocated_blocks
        for _ in range(20):
            s.delete(10)
            s.insert(10, 101)
        # Freed slots are reused: no unbounded arena growth.
        assert s.device.allocated_blocks <= blocks + 1

    def test_ordered_iteration_via_level0(self):
        s = skiplist()
        records = sample_records(150)
        rng = random.Random(2)
        shuffled = records[:]
        rng.shuffle(shuffled)
        s.bulk_load(shuffled)
        assert s.range_query(-1, 10**9) == sorted(records)


class TestSortedColumn:
    def test_binary_search_reads_log_blocks(self):
        column = sorted_column()
        column.bulk_load(sample_records(2048))  # 128 blocks
        before = column.device.snapshot()
        column.get(2048)
        io = column.device.stats_since(before)
        assert io.reads <= 9  # ~log2(128) + 1

    def test_insert_shifts_right_suffix(self):
        column = sorted_column()
        column.bulk_load(sample_records(512))  # 32 blocks
        before = column.device.snapshot()
        column.insert(1, 0)  # smallest key: shifts everything
        everything = column.device.stats_since(before)
        before = column.device.snapshot()
        column.insert(2 * 512 + 1, 0)  # largest key: shifts nothing
        tail_only = column.device.stats_since(before)
        assert everything.writes > 10 * max(1, tail_only.writes)

    def test_delete_keeps_order_and_density(self):
        column = sorted_column()
        records = sample_records(200)
        column.bulk_load(records)
        for key, _ in records[::3]:
            column.delete(key)
        remaining = [record for i, record in enumerate(records) if i % 3]
        assert column.range_query(-1, 10**9) == remaining

    def test_bulk_load_sorts_shuffled_input(self):
        column = sorted_column()
        records = sample_records(500)
        shuffled = records[:]
        random.Random(4).shuffle(shuffled)
        column.bulk_load(shuffled)
        assert column.range_query(-1, 10**9) == records

    def test_external_sort_charges_merge_passes(self):
        small_memory = sorted_column(sort_memory_blocks=2)
        big_memory = sorted_column(sort_memory_blocks=64)
        records = sample_records(2000)
        random.Random(4).shuffle(records)
        for column in (small_memory, big_memory):
            column.bulk_load(list(records))
        # Fewer merge passes with more sort memory.
        assert (
            big_memory.device.counters.writes
            < small_memory.device.counters.writes
        )

    def test_sort_memory_validation(self):
        with pytest.raises(ValueError):
            sorted_column(sort_memory_blocks=1)

    def test_search_block_key_above_all_blocks(self):
        """_search_block's contract: a key above every stored key maps
        to the *last* block (so callers must verify membership), never
        to an out-of-range index, and never to None on non-empty data."""
        column = sorted_column()
        column.bulk_load(sample_records(64))  # keys 0, 2, ..., 126
        last = len(column._extent) - 1
        assert column._search_block(10**9) == last
        assert column._search_block(127) == last
        # Point and range callers handle the above-all case correctly.
        assert column.get(10**9) is None
        assert column.range_query(10**9, 10**9 + 5) == []
        # And the empty extent yields None.
        assert sorted_column()._search_block(5) is None


class TestUnsortedColumn:
    def test_append_is_one_write(self):
        column = unsorted_column()
        column.bulk_load(sample_records(160))
        before = column.device.snapshot()
        column.insert(1001, 1)
        io = column.device.stats_since(before)
        assert io.writes == 1

    def test_scan_cost_position_dependent(self):
        column = unsorted_column()
        column.bulk_load(sample_records(320))  # 20 blocks

        def cost(key):
            before = column.device.snapshot()
            column.get(key)
            return column.device.stats_since(before).reads

        assert cost(0) <= 2
        assert cost(2 * 319) == 20

    def test_delete_backfills_from_tail(self):
        column = unsorted_column()
        records = sample_records(100)
        column.bulk_load(records)
        blocks = column.device.allocated_blocks
        column.delete(0)  # hole at the front, filled from the tail
        assert len(column) == 99
        assert column.get(2 * 99) == 2 * 99 * 10 + 1  # moved record findable
        # Deleting down to a block boundary frees blocks.
        for key, _ in records[1:50]:
            column.delete(key)
        assert column.device.allocated_blocks < blocks

    def test_range_query_sorts_output(self):
        column = unsorted_column()
        records = sample_records(64)
        shuffled = records[:]
        random.Random(8).shuffle(shuffled)
        column.bulk_load(shuffled)
        result = column.range_query(10, 60)
        assert result == [(k, v) for k, v in sorted(records) if 10 <= k <= 60]

    @pytest.mark.parametrize("blocks", [1, 3])
    def test_bulk_load_exactly_full_last_block(self, blocks):
        """Pin the ``_tail_count`` edge: a bulk load that fills its last
        block exactly must record a *full* tail, not an empty one.

        Were ``_tail_count`` 0 here, the next insert would rewrite the
        (full) tail block into an overflowing 17-record payload instead
        of opening a fresh block, and the density audit would flag it.
        """
        column = unsorted_column()
        per_block = column._per_block
        count = blocks * per_block
        column.bulk_load(sample_records(count))
        assert column._tail_count == per_block
        assert column.device.allocated_blocks == blocks
        assert column.audit() == []
        # The next insert must open a fresh block, not rewrite the tail.
        column.insert(2 * count, 1)
        assert column.device.allocated_blocks == blocks + 1
        assert column._tail_count == 1
        assert column.audit() == []
        # Deleting the lone tail record frees the block and restores the
        # full-tail state.
        column.delete(2 * count)
        assert column.device.allocated_blocks == blocks
        assert column._tail_count == per_block
        assert column.audit() == []

    def test_bulk_load_empty_then_partial_tail_counts(self):
        empty = unsorted_column()
        empty.bulk_load([])
        assert empty._tail_count == 0
        assert empty.audit() == []
        partial = unsorted_column()
        partial.bulk_load(sample_records(partial._per_block + 3))
        assert partial._tail_count == 3
        assert partial.audit() == []
