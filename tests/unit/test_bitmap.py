"""Unit tests for bitvectors, WAH compression and the bitmap index."""

from __future__ import annotations

import random

import pytest

from repro.methods.bitmap import BitmapIndex, BitVector, WAHBitVector
from repro.storage.device import SimulatedDevice

from tests.conftest import SMALL_BLOCK


def low_cardinality_records(n, cardinality=4):
    """Records whose value attribute has few distinct values."""
    return [(i, i % cardinality) for i in range(n)]


class TestBitVector:
    def test_set_and_get(self):
        bits = BitVector()
        bits.set(5)
        bits.set(100)
        assert bits.get(5) and bits.get(100)
        assert not bits.get(6)

    def test_clear(self):
        bits = BitVector()
        bits.set(5)
        bits.set(5, False)
        assert not bits.get(5)

    def test_positions_sorted(self):
        bits = BitVector()
        for position in (9, 1, 40):
            bits.set(position)
        assert bits.positions() == [1, 9, 40]

    def test_count(self):
        bits = BitVector()
        for position in range(0, 64, 3):
            bits.set(position)
        assert bits.count() == len(range(0, 64, 3))

    def test_negative_position_rejected(self):
        with pytest.raises(ValueError):
            BitVector().set(-1)

    def test_get_beyond_length(self):
        assert not BitVector().get(1000)


class TestWAHCompression:
    def test_roundtrip_random(self):
        rng = random.Random(11)
        vector = WAHBitVector()
        positions = sorted(rng.sample(range(5000), 200))
        for position in positions:
            vector.set(position)
        words = vector.encode()
        decoded = WAHBitVector.decode(words, vector.length)
        assert decoded.positions() == positions

    def test_roundtrip_dense_run(self):
        vector = WAHBitVector()
        for position in range(100, 500):
            vector.set(position)
        decoded = WAHBitVector.decode(vector.encode(), vector.length)
        assert decoded.positions() == list(range(100, 500))

    def test_sparse_compresses_well(self):
        sparse_wah = WAHBitVector()
        sparse_plain = BitVector()
        for position in (10, 50_000, 100_000):
            sparse_wah.set(position)
            sparse_plain.set(position)
        assert sparse_wah.size_bytes < sparse_plain.size_bytes / 100

    def test_all_zero_vector(self):
        vector = WAHBitVector()
        assert vector.encode() == []
        assert WAHBitVector.decode([], 0).positions() == []

    def test_clear_bit(self):
        vector = WAHBitVector()
        vector.set(7)
        vector.set(7, False)
        assert not vector.get(7)
        assert vector.count() == 0

    def test_fill_word_boundaries(self):
        # Exactly one 31-bit group of ones.
        vector = WAHBitVector()
        for position in range(31):
            vector.set(position)
        words = vector.encode()
        assert len(words) == 1
        assert words[0] >> 31 == 1  # a fill word
        decoded = WAHBitVector.decode(words, 31)
        assert decoded.count() == 31


class TestBitmapIndex:
    def _index(self, **kwargs):
        return BitmapIndex(SimulatedDevice(block_bytes=SMALL_BLOCK), **kwargs)

    def test_lookup_value(self):
        index = self._index()
        index.bulk_load(low_cardinality_records(64))
        matches = index.lookup_value(2)
        assert [key for key, _ in matches] == [k for k in range(64) if k % 4 == 2]

    def test_lookup_missing_value(self):
        index = self._index()
        index.bulk_load(low_cardinality_records(32))
        assert index.lookup_value(99) == []

    def test_distinct_values(self):
        index = self._index()
        index.bulk_load(low_cardinality_records(32, cardinality=3))
        assert index.distinct_values() == [0, 1, 2]

    def test_update_moves_between_bitmaps(self):
        index = self._index()
        index.bulk_load(low_cardinality_records(32))
        index.update(0, 3)  # was value 0
        assert 0 not in [k for k, _ in index.lookup_value(0)]
        assert 0 in [k for k, _ in index.lookup_value(3)]

    def test_delete_removes_from_lookup(self):
        index = self._index()
        index.bulk_load(low_cardinality_records(32))
        index.delete(4)
        assert 4 not in [k for k, _ in index.lookup_value(0)]
        assert index.get(4) is None

    def test_compressed_smaller_than_plain_for_clustered(self):
        # Clustered values => long runs => WAH wins.
        records = [(i, 0 if i < 500 else 1) for i in range(1000)]
        compressed = self._index(compressed=True)
        plain = self._index(compressed=False)
        compressed.bulk_load(records)
        plain.bulk_load(records)
        assert compressed.bitmap_bytes() < plain.bitmap_bytes()

    def test_update_friendly_defers_bitmap_rewrites(self):
        index = self._index(update_friendly=True, delta_merge_bits=1000)
        index.bulk_load(low_cardinality_records(64))
        index.update(0, 3)
        index.update(1, 3)
        # Deltas pending, lookups still correct.
        assert 0 in [k for k, _ in index.lookup_value(3)]
        index.merge_all_deltas()
        assert 0 in [k for k, _ in index.lookup_value(3)]

    def test_update_friendly_merges_at_threshold(self):
        index = self._index(update_friendly=True, delta_merge_bits=4)
        index.bulk_load(low_cardinality_records(64))
        for key in range(8):
            index.update(key, 3)
        assert set(k for k, _ in index.lookup_value(3)) >= set(range(8))

    def test_lookup_reads_bitmap_blocks(self):
        index = self._index()
        index.bulk_load(low_cardinality_records(64))
        before = index.device.snapshot()
        index.lookup_value(1)
        io = index.device.stats_since(before)
        assert io.reads > 0
