"""Unit tests for workload specs, distributions and generation."""

from __future__ import annotations

import random

import pytest

from repro.workloads.distributions import (
    ClusteredKeys,
    LatestKeys,
    SequentialKeys,
    UniformKeys,
    ZipfianKeys,
    distribution_names,
    make_distribution,
)
from repro.workloads.generator import WorkloadGenerator, generate_operations
from repro.workloads.spec import MIXES, Operation, OpKind, WorkloadSpec


class TestSpecValidation:
    def test_mix_must_sum_to_one(self):
        with pytest.raises(ValueError):
            WorkloadSpec(point_queries=0.5, inserts=0.6)

    def test_negative_fraction_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSpec(point_queries=1.5, inserts=-0.5)

    def test_negative_operations_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSpec(operations=-1)

    def test_range_fraction_bounds(self):
        with pytest.raises(ValueError):
            WorkloadSpec(range_fraction=1.5)

    def test_named_mixes_are_valid(self):
        for name, spec in MIXES.items():
            assert sum(spec.mix.values()) == pytest.approx(1.0), name

    def test_scaled_preserves_mix(self):
        spec = MIXES["balanced"].scaled(initial_records=500, operations=50)
        assert spec.initial_records == 500
        assert spec.operations == 50
        assert spec.point_queries == MIXES["balanced"].point_queries

    def test_operation_kind_flags(self):
        assert OpKind.POINT_QUERY.is_read
        assert OpKind.RANGE_QUERY.is_read
        assert OpKind.INSERT.is_write
        assert OpKind.UPDATE.is_write
        assert OpKind.DELETE.is_write

    def test_invalid_range_operation(self):
        with pytest.raises(ValueError):
            Operation(OpKind.RANGE_QUERY, key=10, high_key=5)


class TestDistributions:
    def test_names(self):
        assert set(distribution_names()) == {
            "uniform",
            "sequential",
            "zipfian",
            "latest",
            "clustered",
        }

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_distribution("nope", random.Random(0))

    @pytest.mark.parametrize("name", ["uniform", "sequential", "zipfian", "latest", "clustered"])
    def test_picks_stay_in_bounds(self, name):
        dist = make_distribution(name, random.Random(7))
        for size in (1, 2, 10, 1000):
            for _ in range(50):
                index = dist.pick_index(size)
                assert 0 <= index < size

    def test_uniform_covers_population(self):
        dist = UniformKeys(random.Random(1))
        seen = {dist.pick_index(10) for _ in range(500)}
        assert seen == set(range(10))

    def test_sequential_cycles(self):
        dist = SequentialKeys(random.Random(1))
        picks = [dist.pick_index(3) for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_zipfian_is_skewed(self):
        dist = ZipfianKeys(random.Random(1), theta=0.99)
        counts = [0] * 100
        for _ in range(5000):
            counts[dist.pick_index(100)] += 1
        assert counts[0] > counts[50] * 3

    def test_zipfian_theta_validation(self):
        with pytest.raises(ValueError):
            ZipfianKeys(random.Random(0), theta=1.5)

    def test_latest_prefers_tail(self):
        dist = LatestKeys(random.Random(1))
        counts = [0] * 100
        for _ in range(5000):
            counts[dist.pick_index(100)] += 1
        assert counts[99] > counts[10] * 3

    def test_clustered_is_local(self):
        dist = ClusteredKeys(random.Random(1), spread=0.01)
        picks = [dist.pick_index(10_000) for _ in range(20)]
        spread = max(picks) - min(picks)
        assert spread < 5000  # concentrated relative to the whole space

    def test_pick_from_empty_population_raises(self):
        dist = UniformKeys(random.Random(1))
        with pytest.raises(ValueError):
            dist.pick([])


class TestGenerator:
    def test_initial_data_size_and_keys(self):
        generator = WorkloadGenerator(WorkloadSpec(initial_records=100))
        data = generator.initial_data()
        assert len(data) == 100
        assert [key for key, _ in data] == [2 * i for i in range(100)]

    def test_initial_data_only_once(self):
        generator = WorkloadGenerator(WorkloadSpec(initial_records=10))
        generator.initial_data()
        with pytest.raises(RuntimeError):
            generator.initial_data()

    def test_determinism(self):
        spec = MIXES["balanced"].scaled(initial_records=200, operations=100)
        data_a, ops_a = generate_operations(spec)
        data_b, ops_b = generate_operations(spec)
        assert data_a == data_b
        assert ops_a == ops_b

    def test_operation_counts(self):
        spec = WorkloadSpec(
            point_queries=0.5, inserts=0.5, operations=200, initial_records=50
        )
        _, ops = generate_operations(spec)
        assert len(ops) == 200

    def test_updates_target_live_keys(self):
        spec = WorkloadSpec(
            point_queries=0.0,
            updates=0.5,
            deletes=0.5,
            operations=80,
            initial_records=100,
        )
        generator = WorkloadGenerator(spec)
        data = generator.initial_data()
        live = {key for key, _ in data}
        for op in generator.operations():
            assert op.key in live
            if op.kind is OpKind.DELETE:
                live.remove(op.key)

    def test_inserts_use_fresh_keys(self):
        spec = WorkloadSpec(
            point_queries=0.5, inserts=0.5, operations=100, initial_records=50
        )
        generator = WorkloadGenerator(spec)
        data = generator.initial_data()
        existing = {key for key, _ in data}
        for op in generator.operations():
            if op.kind is OpKind.INSERT:
                assert op.key not in existing
                existing.add(op.key)

    def test_range_queries_well_formed(self):
        spec = WorkloadSpec(
            point_queries=0.0,
            range_queries=1.0,
            operations=50,
            initial_records=200,
            range_fraction=0.05,
        )
        generator = WorkloadGenerator(spec)
        generator.initial_data()
        for op in generator.operations():
            assert op.kind is OpKind.RANGE_QUERY
            assert op.high_key >= op.key

    def test_pure_insert_workload_from_empty(self):
        spec = WorkloadSpec(
            point_queries=0.0, inserts=1.0, operations=30, initial_records=0
        )
        generator = WorkloadGenerator(spec)
        generator.initial_data()
        ops = list(generator.operations())
        assert len(ops) == 30
        assert all(op.kind is OpKind.INSERT for op in ops)

    def test_requires_initial_data_call(self):
        generator = WorkloadGenerator(WorkloadSpec(initial_records=10))
        with pytest.raises(RuntimeError):
            list(generator.operations())

    def test_delete_heavy_degenerate_spec_emits_every_slot(self):
        """Regression: a drained key set must not shorten the stream.

        With more deletes than live keys and no insert weight, the
        generator once returned ``None`` for the unfillable slots,
        silently shortening the stream below ``spec.operations`` and
        skewing every per-op denominator.  Drained slots must instead be
        emitted as guaranteed-miss point queries (odd keys — live keys
        are always even).
        """
        spec = WorkloadSpec(
            point_queries=0.0,
            deletes=1.0,
            operations=120,
            initial_records=40,
        )
        generator = WorkloadGenerator(spec)
        generator.initial_data()
        ops = list(generator.operations())
        assert len(ops) == spec.operations
        assert all(op is not None for op in ops)
        deletes = [op for op in ops if op.kind is OpKind.DELETE]
        misses = [op for op in ops if op.kind is OpKind.POINT_QUERY]
        assert len(deletes) == 40  # every live key deleted exactly once
        assert len(misses) == 80  # the drained tail, one per slot
        assert all(op.key % 2 == 1 for op in misses)  # guaranteed miss

    def test_delete_heavy_spec_falls_back_to_inserts_when_mixed(self):
        # With insert weight in the mix, drained slots become inserts,
        # not misses — the key set can refill.
        spec = WorkloadSpec(
            point_queries=0.0,
            deletes=0.6,
            inserts=0.4,
            operations=200,
            initial_records=10,
        )
        generator = WorkloadGenerator(spec)
        generator.initial_data()
        ops = list(generator.operations())
        assert len(ops) == spec.operations
        assert all(
            op.kind in (OpKind.DELETE, OpKind.INSERT) for op in ops
        )


class TestOperationBatches:
    def _spec(self, operations=100):
        return MIXES["balanced"].scaled(
            initial_records=200, operations=operations
        )

    @pytest.mark.parametrize("size", [1, 3, 16, 100, 1000])
    def test_batches_total_exactly_spec_operations(self, size):
        generator = WorkloadGenerator(self._spec())
        generator.initial_data()
        batches = list(generator.operation_batches(size))
        assert sum(len(batch) for batch in batches) == 100
        # Every batch is full except possibly the last.
        for batch in batches[:-1]:
            assert len(batch) == size
        assert 0 < len(batches[-1]) <= size

    @pytest.mark.parametrize("size", [1, 7, 64])
    def test_stream_identical_to_operations(self, size):
        spec = self._spec()
        flat = WorkloadGenerator(spec)
        flat.initial_data()
        batched = WorkloadGenerator(spec)
        batched.initial_data()
        from_batches = [
            op for batch in batched.operation_batches(size) for op in batch
        ]
        assert from_batches == list(flat.operations())

    def test_non_positive_size_rejected(self):
        generator = WorkloadGenerator(self._spec())
        generator.initial_data()
        with pytest.raises(ValueError):
            generator.operation_batches(0)
        with pytest.raises(ValueError):
            generator.operation_batches(-5)

    def test_marks_generator_consumed(self):
        generator = WorkloadGenerator(self._spec())
        generator.initial_data()
        assert not generator.consumed
        generator.operation_batches(16)
        assert generator.consumed

    def test_requires_initial_data_call(self):
        generator = WorkloadGenerator(self._spec())
        with pytest.raises(RuntimeError):
            generator.operation_batches(16)


class TestGeneratorSingleUse:
    """Both stream producers are single use and fail fast on reuse with
    the same message ``run_workload`` raises — a reused generator would
    replay over mutated key state and produce a stream no seed ever
    specified."""

    def _generator(self):
        spec = MIXES["balanced"].scaled(initial_records=100, operations=50)
        generator = WorkloadGenerator(spec)
        generator.initial_data()
        return generator

    @pytest.mark.parametrize("first,second", [
        ("operations", "operations"),
        ("operations", "operation_batches"),
        ("operation_batches", "operations"),
        ("operation_batches", "operation_batches"),
    ])
    def test_second_stream_request_rejected(self, first, second):
        generator = self._generator()
        if first == "operations":
            list(generator.operations())
        else:
            list(generator.operation_batches(16))
        with pytest.raises(ValueError, match="already produced"):
            if second == "operations":
                generator.operations()
            else:
                generator.operation_batches(16)

    def test_reuse_rejected_even_when_not_fully_iterated(self):
        generator = self._generator()
        batches = generator.operation_batches(8)
        next(batches)  # partially consumed
        with pytest.raises(ValueError, match="fresh WorkloadGenerator"):
            generator.operation_batches(8)
