"""Unit tests for the cached device wrapper."""

from __future__ import annotations

import pytest

from repro.methods.btree import BPlusTree
from repro.obs.sinks import ListSink
from repro.obs.tracer import RecordingTracer
from repro.storage.cached import CachedDevice
from repro.storage.device import CostModel, SimulatedDevice

from tests.conftest import SMALL_BLOCK, sample_records


@pytest.fixture
def backing():
    return SimulatedDevice(block_bytes=SMALL_BLOCK, name="flash")


class TestPassThroughSemantics:
    def test_roundtrip(self, backing):
        cached = CachedDevice(backing, capacity_blocks=4)
        block = cached.allocate()
        cached.write(block, "payload", used_bytes=10)
        assert cached.read(block) == "payload"
        cached.flush()
        assert backing.peek(block) == "payload"

    def test_free_invalidates(self, backing):
        cached = CachedDevice(backing, capacity_blocks=4)
        block = cached.allocate()
        cached.write(block, "x")
        cached.free(block)
        assert not cached.is_allocated(block)
        with pytest.raises(KeyError):
            backing.read(block)

    def test_space_delegates_to_backing(self, backing):
        cached = CachedDevice(backing, capacity_blocks=4)
        cached.allocate()
        cached.allocate(kind="leaf")
        assert cached.allocated_blocks == 2
        assert cached.allocated_bytes == backing.allocated_bytes
        assert cached.blocks_by_kind() == backing.blocks_by_kind()

    def test_peek_sees_dirty_cache(self, backing):
        cached = CachedDevice(backing, capacity_blocks=4)
        block = cached.allocate()
        cached.write(block, "dirty")
        # Not yet on the backing device, but visible through peek.
        assert cached.peek(block) == "dirty"
        assert backing.peek(block) is None


class TestSequentialClassification:
    """Regression: logical scans were always charged as random."""

    def test_sequential_reads_charged_at_sequential_cost(self, backing):
        cached = CachedDevice(backing, capacity_blocks=8)
        cached.cost_model = CostModel.disk()  # make the asymmetry visible
        blocks = [cached.allocate() for _ in range(4)]
        for block in blocks:
            cached.write(block, block)
        before = cached.snapshot()
        for block in blocks:  # ids ascend by 1: a logical scan
            cached.read(block)
        scan_time = cached.stats_since(before).simulated_time
        # First read random (100), the rest sequential (1 each).
        assert scan_time == pytest.approx(100.0 + 3 * 1.0)

    def test_sequential_writes_charged_at_sequential_cost(self, backing):
        cached = CachedDevice(backing, capacity_blocks=8)
        cached.cost_model = CostModel.shingled_disk()
        blocks = [cached.allocate() for _ in range(4)]
        before = cached.snapshot()
        for block in blocks:
            cached.write(block, block)
        write_time = cached.stats_since(before).simulated_time
        assert write_time == pytest.approx(1000.0 + 3 * 10.0)

    def test_trace_events_carry_the_sequential_flag(self, backing):
        sink = ListSink()
        cached = CachedDevice(backing, capacity_blocks=8)
        blocks = [cached.allocate() for _ in range(3)]
        for block in blocks:
            cached.write(block, block)
        cached.set_tracer(RecordingTracer(sink))
        for block in blocks:
            cached.read(block)
        cached.read(blocks[0])
        logical = [
            event for event in sink.events if event.source.startswith("cached")
        ]
        assert [event.sequential for event in logical] == [
            False, True, True, False,
        ]


class TestWriteValidation:
    """Regression: out-of-range used_bytes only exploded at eviction."""

    def test_oversized_used_bytes_rejected_at_write(self, backing):
        cached = CachedDevice(backing, capacity_blocks=4)
        block = cached.allocate()
        with pytest.raises(ValueError):
            cached.write(block, "x", used_bytes=SMALL_BLOCK + 1)

    def test_negative_used_bytes_rejected_at_write(self, backing):
        cached = CachedDevice(backing, capacity_blocks=4)
        block = cached.allocate()
        with pytest.raises(ValueError):
            cached.write(block, "x", used_bytes=-1)

    def test_rejected_write_charges_no_io(self, backing):
        cached = CachedDevice(backing, capacity_blocks=4)
        block = cached.allocate()
        before = cached.snapshot()
        with pytest.raises(ValueError):
            cached.write(block, "x", used_bytes=SMALL_BLOCK + 1)
        assert cached.stats_since(before).writes == 0


class TestSpaceAccountingWithDirtyFrames:
    """Regression: mid-run occupancy ignored unflushed dirty frames."""

    def test_used_bytes_sees_unflushed_writes(self, backing):
        cached = CachedDevice(backing, capacity_blocks=4)
        block = cached.allocate()
        cached.write(block, "x", used_bytes=100)
        assert backing.used_bytes() == 0  # stale until flush
        assert cached.used_bytes() == 100  # but the wrapper is current
        cached.flush()
        assert backing.used_bytes() == 100
        assert cached.used_bytes() == 100

    def test_used_bytes_sees_dirty_overwrite_of_flushed_block(self, backing):
        cached = CachedDevice(backing, capacity_blocks=4)
        block = cached.allocate()
        cached.write(block, "x", used_bytes=100)
        cached.flush()
        cached.write(block, "y", used_bytes=40)  # dirty again, shrunk
        assert backing.used_bytes() == 100
        assert cached.used_bytes() == 40

    def test_fill_factor_counts_dirty_frames(self, backing):
        cached = CachedDevice(backing, capacity_blocks=4)
        block = cached.allocate()
        cached.write(block, "x", used_bytes=SMALL_BLOCK // 2)
        assert cached.fill_factor() == pytest.approx(0.5)

    def test_fill_factor_empty_device_is_zero(self, backing):
        cached = CachedDevice(backing, capacity_blocks=4)
        assert cached.fill_factor() == 0.0


class TestTrafficSeparation:
    def test_hot_reads_never_reach_backing(self, backing):
        cached = CachedDevice(backing, capacity_blocks=4)
        block = cached.allocate()
        cached.write(block, "hot")
        backing.reset_counters()
        for _ in range(50):
            cached.read(block)
        assert cached.counters.reads == 50  # logical traffic
        assert backing.counters.reads == 0  # physical traffic

    def test_cold_reads_reach_backing_once(self, backing):
        cached = CachedDevice(backing, capacity_blocks=8)
        blocks = []
        for i in range(4):
            block = cached.allocate()
            cached.write(block, i)
            blocks.append(block)
        cached.flush()
        fresh = CachedDevice(backing, capacity_blocks=8)
        backing.reset_counters()
        for block in blocks:
            fresh.read(block)
            fresh.read(block)
        assert backing.counters.reads == 4


class TestMethodOverCache:
    def test_btree_runs_unchanged_over_cache(self, backing):
        cached = CachedDevice(backing, capacity_blocks=64)
        tree = BPlusTree(device=cached, leaf_capacity=8, fanout=5)
        records = sample_records(200)
        tree.bulk_load(records)
        for key, value in records:
            assert tree.get(key) == value
        tree.insert(999, 1)
        tree.delete(0)
        assert tree.get(999) == 1
        assert tree.get(0) is None

    def test_cache_cuts_backing_reads_for_hot_keys(self, backing):
        cached = CachedDevice(backing, capacity_blocks=16)
        tree = BPlusTree(device=cached, leaf_capacity=8, fanout=5)
        tree.bulk_load(sample_records(500))
        cached.flush()
        backing.reset_counters()
        for _ in range(30):
            tree.get(100)  # same root-to-leaf path every time
        reads_for_30_gets = backing.counters.reads
        assert reads_for_30_gets <= tree.height  # first walk misses only

    def test_zero_capacity_is_honest_passthrough(self, backing):
        cached = CachedDevice(backing, capacity_blocks=0)
        tree = BPlusTree(device=cached, leaf_capacity=8, fanout=5)
        tree.bulk_load(sample_records(100))
        backing.reset_counters()
        tree.get(50)
        assert backing.counters.reads == cached.stats_since(
            cached.snapshot()
        ).reads or backing.counters.reads > 0
