"""Unit tests for the cached device wrapper."""

from __future__ import annotations

import pytest

from repro.methods.btree import BPlusTree
from repro.storage.cached import CachedDevice
from repro.storage.device import SimulatedDevice

from tests.conftest import SMALL_BLOCK, sample_records


@pytest.fixture
def backing():
    return SimulatedDevice(block_bytes=SMALL_BLOCK, name="flash")


class TestPassThroughSemantics:
    def test_roundtrip(self, backing):
        cached = CachedDevice(backing, capacity_blocks=4)
        block = cached.allocate()
        cached.write(block, "payload", used_bytes=10)
        assert cached.read(block) == "payload"
        cached.flush()
        assert backing.peek(block) == "payload"

    def test_free_invalidates(self, backing):
        cached = CachedDevice(backing, capacity_blocks=4)
        block = cached.allocate()
        cached.write(block, "x")
        cached.free(block)
        assert not cached.is_allocated(block)
        with pytest.raises(KeyError):
            backing.read(block)

    def test_space_delegates_to_backing(self, backing):
        cached = CachedDevice(backing, capacity_blocks=4)
        cached.allocate()
        cached.allocate(kind="leaf")
        assert cached.allocated_blocks == 2
        assert cached.allocated_bytes == backing.allocated_bytes
        assert cached.blocks_by_kind() == backing.blocks_by_kind()

    def test_peek_sees_dirty_cache(self, backing):
        cached = CachedDevice(backing, capacity_blocks=4)
        block = cached.allocate()
        cached.write(block, "dirty")
        # Not yet on the backing device, but visible through peek.
        assert cached.peek(block) == "dirty"
        assert backing.peek(block) is None


class TestTrafficSeparation:
    def test_hot_reads_never_reach_backing(self, backing):
        cached = CachedDevice(backing, capacity_blocks=4)
        block = cached.allocate()
        cached.write(block, "hot")
        backing.reset_counters()
        for _ in range(50):
            cached.read(block)
        assert cached.counters.reads == 50  # logical traffic
        assert backing.counters.reads == 0  # physical traffic

    def test_cold_reads_reach_backing_once(self, backing):
        cached = CachedDevice(backing, capacity_blocks=8)
        blocks = []
        for i in range(4):
            block = cached.allocate()
            cached.write(block, i)
            blocks.append(block)
        cached.flush()
        fresh = CachedDevice(backing, capacity_blocks=8)
        backing.reset_counters()
        for block in blocks:
            fresh.read(block)
            fresh.read(block)
        assert backing.counters.reads == 4


class TestMethodOverCache:
    def test_btree_runs_unchanged_over_cache(self, backing):
        cached = CachedDevice(backing, capacity_blocks=64)
        tree = BPlusTree(device=cached, leaf_capacity=8, fanout=5)
        records = sample_records(200)
        tree.bulk_load(records)
        for key, value in records:
            assert tree.get(key) == value
        tree.insert(999, 1)
        tree.delete(0)
        assert tree.get(999) == 1
        assert tree.get(0) is None

    def test_cache_cuts_backing_reads_for_hot_keys(self, backing):
        cached = CachedDevice(backing, capacity_blocks=16)
        tree = BPlusTree(device=cached, leaf_capacity=8, fanout=5)
        tree.bulk_load(sample_records(500))
        cached.flush()
        backing.reset_counters()
        for _ in range(30):
            tree.get(100)  # same root-to-leaf path every time
        reads_for_30_gets = backing.counters.reads
        assert reads_for_30_gets <= tree.height  # first walk misses only

    def test_zero_capacity_is_honest_passthrough(self, backing):
        cached = CachedDevice(backing, capacity_blocks=0)
        tree = BPlusTree(device=cached, leaf_capacity=8, fanout=5)
        tree.bulk_load(sample_records(100))
        backing.reset_counters()
        tree.get(50)
        assert backing.counters.reads == cached.stats_since(
            cached.snapshot()
        ).reads or backing.counters.reads > 0
