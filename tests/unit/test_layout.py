"""Unit tests for record-layout arithmetic."""

from __future__ import annotations

import pytest

from repro.storage.layout import (
    KEY_BYTES,
    POINTER_BYTES,
    RECORD_BYTES,
    VALUE_BYTES,
    blocks_for_records,
    fanout_for_block,
    keys_per_block,
    pointers_per_block,
    record_bytes,
    records_per_block,
)


class TestConstants:
    def test_record_is_key_plus_value(self):
        assert RECORD_BYTES == KEY_BYTES + VALUE_BYTES


class TestRecordsPerBlock:
    def test_standard_block(self):
        assert records_per_block(4096) == 256

    def test_small_block(self):
        assert records_per_block(256) == 16

    def test_exact_fit(self):
        assert records_per_block(RECORD_BYTES) == 1

    def test_too_small_raises(self):
        with pytest.raises(ValueError):
            records_per_block(RECORD_BYTES - 1)


class TestOtherCapacities:
    def test_keys_per_block(self):
        assert keys_per_block(4096) == 512

    def test_keys_too_small_raises(self):
        with pytest.raises(ValueError):
            keys_per_block(4)

    def test_pointers_per_block(self):
        assert pointers_per_block(4096) == 512

    def test_fanout_fits_block(self):
        for block in (256, 512, 4096):
            fanout = fanout_for_block(block)
            assert (fanout - 1) * KEY_BYTES + fanout * POINTER_BYTES <= block

    def test_fanout_minimum_two(self):
        assert fanout_for_block(16) >= 2


class TestBlocksForRecords:
    def test_zero_records(self):
        assert blocks_for_records(0, 4096) == 0

    def test_exact_multiple(self):
        assert blocks_for_records(512, 4096) == 2

    def test_rounds_up(self):
        assert blocks_for_records(257, 4096) == 2

    def test_record_bytes(self):
        assert record_bytes(10) == 10 * RECORD_BYTES
