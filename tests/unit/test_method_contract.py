"""The access-method contract, checked for every registered structure.

Every structure must behave identically to a dict oracle for the five
workload operations, across bulk loads, mixed mutation sequences,
re-insertion after deletion and boundary range queries.  Constructors
are tuned to small capacities so that multi-block machinery (splits,
spills, compactions, merges) runs even on small datasets.
"""

from __future__ import annotations

import random

import pytest

from repro.core.registry import available_methods, create_method
from repro.storage.device import SimulatedDevice

from tests.conftest import SMALL_BLOCK, sample_records

#: Constructor overrides per method, tuned so maintenance paths trigger
#: with test-sized data.
TUNED_KWARGS = {
    "lsm": dict(memtable_records=32, size_ratio=3),
    "masm": dict(buffer_records=16, max_runs=3),
    "pdt": dict(checkpoint_records=48),
    "pbt": dict(partition_records=64, max_partitions=3),
    "zonemap": dict(partition_records=64),
    "approximate-index": dict(partition_records=64),
    "adaptive-merging": dict(run_records=64),
    "cracking": dict(pending_limit=32),
    "sparse-index": dict(rebuild_overflow_ratio=0.3),
    "hash-index": dict(initial_buckets=4),
    "sorted-column": dict(sort_memory_blocks=4),
    "btree": dict(leaf_capacity=8, fanout=5, sort_memory_blocks=4),
    "skiplist": dict(max_height=8),
    "indexed-log": dict(segment_records=32, compact_segments=4),
    "morphing": dict(window=60),
    "silt": dict(log_records=24, merge_stores=2),
    "cache-oblivious": dict(rebuild_fraction=0.2),
}

ALL_METHODS = sorted(available_methods())


def build(name: str):
    device = SimulatedDevice(block_bytes=SMALL_BLOCK)
    return create_method(name, device=device, **TUNED_KWARGS.get(name, {}))


@pytest.fixture(params=ALL_METHODS)
def method(request):
    return build(request.param)


class TestBulkLoadAndGet:
    def test_all_loaded_keys_found(self, method):
        records = sample_records(100)
        method.bulk_load(records)
        for key, value in records:
            assert method.get(key) == value

    def test_absent_keys_return_none(self, method):
        method.bulk_load(sample_records(50))
        for key in (-2, 1, 99, 1001):
            assert method.get(key) is None

    def test_len_matches_load(self, method):
        method.bulk_load(sample_records(77))
        assert len(method) == 77

    def test_empty_structure(self, method):
        assert method.get(5) is None
        assert method.range_query(0, 100) == []
        assert len(method) == 0

    def test_bulk_load_twice_rejected(self, method):
        method.bulk_load(sample_records(5))
        with pytest.raises(RuntimeError):
            method.bulk_load(sample_records(5))

    def test_bulk_load_empty_is_fine(self, method):
        method.bulk_load([])
        assert len(method) == 0
        assert method.get(0) is None


class TestRangeQueries:
    def test_full_range(self, method):
        records = sample_records(60)
        method.bulk_load(records)
        assert method.range_query(-10, 10_000) == sorted(records)

    def test_interior_range(self, method):
        records = sample_records(60)
        method.bulk_load(records)
        expected = [(k, v) for k, v in sorted(records) if 20 <= k <= 60]
        assert method.range_query(20, 60) == expected

    def test_empty_range(self, method):
        method.bulk_load(sample_records(30))
        # Keys are even, so an odd singleton range is empty.
        assert method.range_query(7, 7) == []

    def test_inverted_range_is_empty(self, method):
        method.bulk_load(sample_records(30))
        assert method.range_query(40, 10) == []

    def test_single_key_range(self, method):
        records = sample_records(30)
        method.bulk_load(records)
        assert method.range_query(10, 10) == [(10, 101)]

    def test_range_bounds_inclusive(self, method):
        method.bulk_load(sample_records(10))  # keys 0..18
        result = method.range_query(0, 18)
        assert result[0][0] == 0
        assert result[-1][0] == 18


class TestMutations:
    def test_insert_then_get(self, method):
        method.bulk_load(sample_records(20))
        method.insert(101, 5555)
        assert method.get(101) == 5555
        assert len(method) == 21

    def test_update_then_get(self, method):
        method.bulk_load(sample_records(20))
        method.update(10, 9999)
        assert method.get(10) == 9999
        assert len(method) == 20

    def test_delete_then_get(self, method):
        method.bulk_load(sample_records(20))
        method.delete(10)
        assert method.get(10) is None
        assert len(method) == 19
        # Neighbours are intact.
        assert method.get(8) == 81
        assert method.get(12) == 121

    def test_update_absent_raises(self, method):
        method.bulk_load(sample_records(10))
        with pytest.raises(KeyError):
            method.update(999, 1)

    def test_delete_absent_raises(self, method):
        method.bulk_load(sample_records(10))
        with pytest.raises(KeyError):
            method.delete(999)

    def test_reinsert_after_delete(self, method):
        method.bulk_load(sample_records(20))
        method.delete(10)
        method.insert(10, 42)
        assert method.get(10) == 42
        assert len(method) == 20

    def test_insert_into_empty(self, method):
        method.bulk_load([])
        method.insert(7, 70)
        assert method.get(7) == 70
        assert len(method) == 1

    def test_range_reflects_mutations(self, method):
        method.bulk_load(sample_records(20))
        method.insert(5, 50)
        method.update(6, 61)
        method.delete(8)
        result = dict(method.range_query(4, 10))
        assert result == {4: 41, 5: 50, 6: 61, 10: 101}


class TestOracleSequences:
    """Randomized mixed sequences checked against a dict oracle."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_mixed_sequence_matches_oracle(self, method, seed):
        rng = random.Random(seed)
        records = sample_records(120)
        method.bulk_load(records)
        oracle = dict(records)
        next_key = 1000
        for _ in range(250):
            op = rng.random()
            if op < 0.30:  # point query
                if oracle and rng.random() < 0.8:
                    key = rng.choice(sorted(oracle))
                    assert method.get(key) == oracle[key]
                else:
                    absent = next_key + 99999
                    assert method.get(absent) is None
            elif op < 0.45:  # range query
                lo = rng.randrange(0, 260)
                hi = lo + rng.randrange(0, 40)
                expected = sorted(
                    (k, v) for k, v in oracle.items() if lo <= k <= hi
                )
                assert method.range_query(lo, hi) == expected
            elif op < 0.65:  # insert
                method.insert(next_key, next_key * 7)
                oracle[next_key] = next_key * 7
                next_key += 1
            elif op < 0.85 and oracle:  # update
                key = rng.choice(sorted(oracle))
                oracle[key] = oracle[key] + 1
                method.update(key, oracle[key])
            elif oracle:  # delete
                key = rng.choice(sorted(oracle))
                del oracle[key]
                method.delete(key)
        assert len(method) == len(oracle)
        for key, value in oracle.items():
            assert method.get(key) == value


class TestSpaceAccounting:
    def test_space_at_least_base(self, method):
        method.bulk_load(sample_records(100))
        method.flush()
        stats = method.stats()
        assert stats.space_bytes >= stats.base_bytes > 0
        assert stats.space_amplification >= 1.0

    def test_stats_shape(self, method):
        method.bulk_load(sample_records(10))
        stats = method.stats()
        assert stats.name == method.name
        assert stats.records == 10
