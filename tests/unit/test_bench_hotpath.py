"""The hot-path microbenchmark runs end to end (CI smoke mode).

``tools/bench_hotpath.py`` is the performance record for the simulator
hot path: it measures the current device (per-op and batched paths)
against a compiled-in replica of the pre-optimization implementation and
archives one trajectory entry per PR in ``BENCH_hotpath.json``.  This
test runs it in ``--smoke`` mode on every CI run, so the tool (and the
legacy replica's API compatibility) cannot rot; it checks structure, not
absolute throughput — timing assertions would flake on shared machines.
The committed trajectory itself is gated separately
(``tools/bench_gate.py --trajectory``, wired in via
``tests/unit/test_bench_gate.py``).
"""

from __future__ import annotations

import json
import os
import sys

TOOLS_PATH = os.path.join(os.path.dirname(__file__), "..", "..", "tools")
BASELINE_PATH = os.path.join(
    os.path.dirname(__file__), "..", "..", "BENCH_hotpath.json"
)


def _bench_hotpath():
    sys.path.insert(0, TOOLS_PATH)
    try:
        import bench_hotpath
    finally:
        sys.path.remove(TOOLS_PATH)
    return bench_hotpath


def test_smoke_run_produces_trajectory_entry(tmp_path, capsys):
    bench_hotpath = _bench_hotpath()
    output = tmp_path / "hotpath.json"
    exit_code = bench_hotpath.main(
        ["--smoke", "--output", str(output), "--label", "smoke-test"]
    )
    assert exit_code == 0
    trajectory = json.loads(output.read_text())
    assert [entry["label"] for entry in trajectory["entries"]] == ["smoke-test"]
    report = trajectory["entries"][-1]
    assert report["smoke"] is True
    device = report["device"]
    for key in (
        "read_ops_per_sec",
        "write_ops_per_sec",
        "read_many_ops_per_sec",
        "write_many_ops_per_sec",
        "legacy_read_ops_per_sec",
        "legacy_write_ops_per_sec",
        "read_speedup",
        "write_speedup",
        "read_batch_speedup",
        "write_batch_speedup",
    ):
        assert device[key] > 0, key
    sweep = report["sweep"]
    assert sweep["cells"] == len(bench_hotpath.SWEEP_METHODS) * len(
        bench_hotpath.SWEEP_SEEDS
    )
    assert sweep["serial_seconds"] > 0
    assert sweep["parallel_seconds"] > 0
    assert sweep["cpus"] >= 1
    assert set(sweep["jobs_sweep"]) == {"1", "2", str(sweep["jobs"])}
    for stats in sweep["jobs_sweep"].values():
        assert stats["seconds"] > 0
        assert stats["speedup"] > 0
    spans = report["spans"]
    for key in (
        "per_site_disabled_ns",
        "span_sites_per_op",
        "per_op_ns",
        "disabled_overhead_fraction",
        "enabled_slowdown",
    ):
        assert spans[key] >= 0, key
    assert spans["span_sites_per_op"] > 0
    assert spans["disabled_budget"] == bench_hotpath.SPAN_DISABLED_BUDGET
    workload = report["workload"]
    assert set(workload["mixes"]) == set(bench_hotpath.WORKLOAD_MIXES)
    for mix in workload["mixes"].values():
        assert mix["per_op_seconds"] > 0
        assert mix["batched_seconds"] > 0
        assert mix["batched_speedup"] > 0
    printed = capsys.readouterr().out
    assert "device read" in printed and "device write" in printed
    assert "read_many" in printed and "write_many" in printed
    assert "spans disabled" in printed
    assert "identical profile" in printed


def test_rerun_with_same_label_replaces_entry(tmp_path, capsys):
    bench_hotpath = _bench_hotpath()
    output = tmp_path / "hotpath.json"
    for _ in range(2):
        assert bench_hotpath.main(
            ["--smoke", "--output", str(output), "--label", "smoke-test"]
        ) == 0
        capsys.readouterr()
    trajectory = json.loads(output.read_text())
    assert [e["label"] for e in trajectory["entries"]] == ["smoke-test"]


def test_merge_trajectory_converts_legacy_report(tmp_path):
    """A pre-trajectory BENCH_hotpath.json (one flat report) becomes the
    first entry, labelled ``pre-batch``, when a new entry lands."""
    bench_hotpath = _bench_hotpath()
    path = tmp_path / "legacy.json"
    legacy = {
        "device": {"read_ops_per_sec": 1.0, "write_ops_per_sec": 2.0},
        "smoke": False,
    }
    path.write_text(json.dumps(legacy))
    merged = bench_hotpath.merge_trajectory(
        str(path), {"label": "new", "device": {}}
    )
    labels = [entry["label"] for entry in merged["entries"]]
    assert labels == ["pre-batch", "new"]
    assert merged["entries"][0]["device"]["read_ops_per_sec"] == 1.0


def test_legacy_replica_counts_like_the_real_device():
    """The baseline replica must agree with the device on counters —
    otherwise the recorded speedup compares against a strawman."""
    bench_hotpath = _bench_hotpath()
    from repro.storage.device import SimulatedDevice

    legacy = bench_hotpath._LegacyDevice(256)
    current = SimulatedDevice(block_bytes=256)
    for device in (legacy, current):
        for _ in range(8):
            device.allocate()
        for i in range(50):
            device.write((3 * i) % 8, payload=i, used_bytes=i % 257 % 256)
        for i in range(75):
            device.read((5 * i) % 8)
    for field in ("reads", "writes", "read_bytes", "write_bytes",
                  "allocations", "frees", "simulated_time"):
        assert getattr(legacy.counters, field) == getattr(
            current.counters, field
        ), field


def _committed_entries():
    with open(BASELINE_PATH) as handle:
        return json.load(handle)["entries"]


def test_committed_baseline_meets_the_speedup_bar():
    """Every archived full-run entry documents >=1.5x over the legacy
    replica on both per-op paths."""
    for entry in _committed_entries():
        device = entry["device"]
        assert device["read_speedup"] >= 1.5, entry["label"]
        assert device["write_speedup"] >= 1.5, entry["label"]


def test_committed_baseline_meets_the_batched_bar():
    """The newest entry's batched throughput holds >=2x the *first*
    entry's per-op numbers — the bar the batched pipeline (ISSUE 6
    tentpole) was introduced to clear."""
    entries = _committed_entries()
    first, latest = entries[0]["device"], entries[-1]["device"]
    assert latest["read_many_ops_per_sec"] >= 2.0 * first["read_ops_per_sec"]
    assert latest["write_many_ops_per_sec"] >= 2.0 * first["write_ops_per_sec"]


def test_committed_baseline_keeps_spans_within_budget():
    """The archived full runs prove the disabled span path stays within
    its recorded budget of the hot loop (ISSUE 5 satellite)."""
    for entry in _committed_entries():
        spans = entry["spans"]
        assert spans["within_budget"] is True, entry["label"]
        assert (
            spans["disabled_overhead_fraction"] < spans["disabled_budget"]
        ), entry["label"]


def test_committed_baseline_batched_workload_profiles_identical():
    """The recorded end-to-end workload comparison ran with identical
    profiles (the tool asserts it); the trajectory must carry the
    numbers for both mixes."""
    latest = _committed_entries()[-1]
    mixes = latest["workload"]["mixes"]
    assert set(mixes) == {"balanced", "read-mostly"}
    for mix in mixes.values():
        assert mix["per_op_ops_per_sec"] > 0
        assert mix["batched_ops_per_sec"] > 0
