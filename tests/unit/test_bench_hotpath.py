"""The hot-path microbenchmark runs end to end (CI smoke mode).

``tools/bench_hotpath.py`` is the performance record for the simulator
hot path: it measures the current device against a compiled-in replica
of the pre-optimization implementation and archives the numbers in
``BENCH_hotpath.json``.  This test runs it in ``--smoke`` mode on every
CI run, so the tool (and the legacy replica's API compatibility) cannot
rot; it checks structure, not absolute throughput — timing assertions
would flake on shared machines.
"""

from __future__ import annotations

import json
import os
import sys

TOOLS_PATH = os.path.join(os.path.dirname(__file__), "..", "..", "tools")
BASELINE_PATH = os.path.join(
    os.path.dirname(__file__), "..", "..", "BENCH_hotpath.json"
)


def _bench_hotpath():
    sys.path.insert(0, TOOLS_PATH)
    try:
        import bench_hotpath
    finally:
        sys.path.remove(TOOLS_PATH)
    return bench_hotpath


def test_smoke_run_produces_report(tmp_path, capsys):
    bench_hotpath = _bench_hotpath()
    output = tmp_path / "hotpath.json"
    exit_code = bench_hotpath.main(["--smoke", "--output", str(output)])
    assert exit_code == 0
    report = json.loads(output.read_text())
    assert report["smoke"] is True
    device = report["device"]
    for key in (
        "read_ops_per_sec",
        "write_ops_per_sec",
        "legacy_read_ops_per_sec",
        "legacy_write_ops_per_sec",
        "read_speedup",
        "write_speedup",
    ):
        assert device[key] > 0, key
    sweep = report["sweep"]
    assert sweep["cells"] == len(bench_hotpath.SWEEP_METHODS)
    assert sweep["serial_seconds"] > 0
    assert sweep["parallel_seconds"] > 0
    spans = report["spans"]
    for key in (
        "per_site_disabled_ns",
        "span_sites_per_op",
        "per_op_ns",
        "disabled_overhead_fraction",
        "enabled_slowdown",
    ):
        assert spans[key] >= 0, key
    assert spans["span_sites_per_op"] > 0
    assert spans["disabled_budget"] == bench_hotpath.SPAN_DISABLED_BUDGET
    printed = capsys.readouterr().out
    assert "device read" in printed and "device write" in printed
    assert "spans disabled" in printed


def test_legacy_replica_counts_like_the_real_device():
    """The baseline replica must agree with the device on counters —
    otherwise the recorded speedup compares against a strawman."""
    bench_hotpath = _bench_hotpath()
    from repro.storage.device import SimulatedDevice

    legacy = bench_hotpath._LegacyDevice(256)
    current = SimulatedDevice(block_bytes=256)
    for device in (legacy, current):
        for _ in range(8):
            device.allocate()
        for i in range(50):
            device.write((3 * i) % 8, payload=i, used_bytes=i % 257 % 256)
        for i in range(75):
            device.read((5 * i) % 8)
    for field in ("reads", "writes", "read_bytes", "write_bytes",
                  "allocations", "frees", "simulated_time"):
        assert getattr(legacy.counters, field) == getattr(
            current.counters, field
        ), field


def test_committed_baseline_meets_the_speedup_bar():
    """The archived full-run numbers document >=1.5x on both paths."""
    with open(BASELINE_PATH) as handle:
        baseline = json.load(handle)
    assert baseline["device"]["read_speedup"] >= 1.5
    assert baseline["device"]["write_speedup"] >= 1.5


def test_committed_baseline_keeps_spans_within_budget():
    """The archived full run proves disabled spans cost <2% of the hot
    loop (ISSUE 5 satellite: span overhead recorded in the baseline)."""
    with open(BASELINE_PATH) as handle:
        baseline = json.load(handle)
    spans = baseline["spans"]
    assert spans["within_budget"] is True
    assert spans["disabled_overhead_fraction"] < spans["disabled_budget"]
