"""Unit tests for the memory-hierarchy simulator (Figure 2 substrate)."""

from __future__ import annotations

import pytest

from repro.storage.device import SimulatedDevice
from repro.storage.hierarchy import LevelSpec, MemoryHierarchy


@pytest.fixture
def backing():
    return SimulatedDevice(block_bytes=64, name="disk")


def _seed(device, n):
    blocks = []
    for i in range(n):
        block = device.allocate()
        device.write(block, f"payload-{i}")
        blocks.append(block)
    return blocks


def make_hierarchy(backing, capacities):
    specs = [LevelSpec(name=f"L{i}", capacity_blocks=c) for i, c in enumerate(capacities)]
    return MemoryHierarchy(backing, specs)


class TestReads:
    def test_read_through_fills_all_levels(self, backing):
        (block,) = _seed(backing, 1)
        hierarchy = make_hierarchy(backing, [2, 4])
        backing.reset_counters()
        assert hierarchy.read(block) == "payload-0"
        assert backing.counters.reads == 1
        # Second read is served at the top level.
        assert hierarchy.read(block) == "payload-0"
        assert backing.counters.reads == 1
        assert hierarchy.levels[0].counters.reads_served == 1

    def test_miss_counts_cascade(self, backing):
        (block,) = _seed(backing, 1)
        hierarchy = make_hierarchy(backing, [2, 4])
        hierarchy.read(block)
        for level in hierarchy.levels:
            assert level.counters.reads_passed_down == 1

    def test_mid_level_hit(self, backing):
        b0, b1, b2 = _seed(backing, 3)
        hierarchy = make_hierarchy(backing, [1, 8])
        hierarchy.read(b0)
        hierarchy.read(b1)  # evicts b0 from L0; still in L1
        backing.reset_counters()
        hierarchy.read(b0)
        assert backing.counters.reads == 0
        assert hierarchy.levels[1].counters.reads_served >= 1

    def test_zero_capacity_level_always_passes(self, backing):
        (block,) = _seed(backing, 1)
        hierarchy = make_hierarchy(backing, [0, 4])
        hierarchy.read(block)
        hierarchy.read(block)
        assert hierarchy.levels[0].counters.reads_served == 0
        assert hierarchy.levels[1].counters.reads_served == 1


class TestWrites:
    def test_write_absorbed_at_top(self, backing):
        (block,) = _seed(backing, 1)
        hierarchy = make_hierarchy(backing, [2, 4])
        backing.reset_counters()
        hierarchy.write(block, "updated")
        assert backing.counters.writes == 0
        assert hierarchy.read(block) == "updated"

    def test_flush_reaches_backing(self, backing):
        (block,) = _seed(backing, 1)
        hierarchy = make_hierarchy(backing, [2, 4])
        hierarchy.write(block, "updated")
        hierarchy.flush()
        assert backing.peek(block) == "updated"

    def test_no_levels_writes_direct(self, backing):
        (block,) = _seed(backing, 1)
        hierarchy = make_hierarchy(backing, [])
        backing.reset_counters()
        hierarchy.write(block, "direct")
        assert backing.counters.writes == 1


class TestFigure2Shape:
    """Growing level n-1 capacity lowers traffic at level n and raises
    space at n-1 — the exact interaction of the paper's Figure 2."""

    def test_bigger_cache_means_less_backing_traffic(self, backing):
        import random

        blocks = _seed(backing, 16)
        # A skewed pattern (hot head, cold tail) so partial caches help;
        # a pure cyclic scan would defeat LRU at every sub-full capacity.
        rng = random.Random(3)
        pattern = [blocks[min(int(rng.expovariate(0.4)), 15)] for _ in range(300)]
        results = {}
        for capacity in (2, 8, 16):
            backing.reset_counters()
            hierarchy = make_hierarchy(backing, [capacity])
            for block in pattern:
                hierarchy.read(block)
            results[capacity] = backing.counters.reads
        assert results[16] < results[8] < results[2]

    def test_bigger_cache_means_more_space(self, backing):
        blocks = _seed(backing, 16)
        spaces = {}
        for capacity in (2, 8, 16):
            hierarchy = make_hierarchy(backing, [capacity])
            for block in blocks:
                hierarchy.read(block)
            spaces[capacity] = hierarchy.levels[0].space_bytes
        assert spaces[16] > spaces[8] > spaces[2]


class TestIntrospection:
    def test_level_lookup_by_name(self, backing):
        hierarchy = make_hierarchy(backing, [2, 4])
        assert hierarchy.level("L1").spec.capacity_blocks == 4
        with pytest.raises(KeyError):
            hierarchy.level("missing")

    def test_space_by_level(self, backing):
        blocks = _seed(backing, 4)
        hierarchy = make_hierarchy(backing, [2])
        for block in blocks:
            hierarchy.read(block)
        rows = hierarchy.space_by_level()
        assert rows[0][0] == "L0"
        assert rows[-1][0] == "disk"
        assert rows[-1][1] == 4 * backing.block_bytes


class TestWritePolicies:
    def test_write_through_level_passes_every_write_down(self, backing):
        (block,) = _seed(backing, 1)
        from repro.storage.hierarchy import LevelSpec, MemoryHierarchy

        hierarchy = MemoryHierarchy(
            backing,
            [
                LevelSpec("cache", 2, write_policy="write-through"),
                LevelSpec("dram", 4, write_policy="write-through"),
            ],
        )
        backing.reset_counters()
        hierarchy.write(block, "v1")
        assert backing.counters.writes == 1
        assert backing.peek(block) == "v1"
        # Frames stayed clean at both levels but still serve reads.
        assert hierarchy.levels[0].pool.dirty_blocks == 0
        assert hierarchy.levels[1].pool.dirty_blocks == 0
        assert hierarchy.read(block) == "v1"
        assert backing.counters.reads == 0
        assert hierarchy.audit() == []

    def test_write_back_defers_until_flush(self, backing):
        (block,) = _seed(backing, 1)
        hierarchy = make_hierarchy(backing, [2, 4])
        backing.reset_counters()
        hierarchy.write(block, "v1")
        assert backing.counters.writes == 0
        hierarchy.flush()
        assert backing.counters.writes == 1
        assert hierarchy.audit() == []

    def test_invalid_policy_rejected(self):
        from repro.storage.hierarchy import LevelSpec

        with pytest.raises(ValueError):
            LevelSpec("bad", 2, write_policy="write-around")
        with pytest.raises(ValueError):
            LevelSpec("bad", 2, inclusion="nine")


class TestAudit:
    def test_clean_run_audits_clean(self, backing):
        blocks = _seed(backing, 16)
        hierarchy = make_hierarchy(backing, [2, 8])
        for block in blocks:
            hierarchy.read(block)
            hierarchy.write(block, "w")
        assert hierarchy.audit() == []

    def test_audit_catches_a_planted_stale_frame(self, backing):
        b0, b1 = _seed(backing, 2)
        hierarchy = make_hierarchy(backing, [2, 8])
        hierarchy.read(b0)
        # Corrupt the backing copy behind the hierarchy's back: the
        # clean frames above now disagree with the authoritative copy.
        backing.write(b0, "mutated-behind-the-cache")
        violations = hierarchy.audit()
        assert any("coherence" in violation for violation in violations)

    def test_audit_checks_conservation_both_sides(self, backing):
        (block,) = _seed(backing, 1)
        hierarchy = make_hierarchy(backing, [2, 4])
        hierarchy.read(block)
        # Traffic injected directly into a lower level (not via the
        # chain) breaks the passed-down == reaching equality.
        hierarchy.levels[1].read(block)
        violations = hierarchy.audit()
        assert any("conservation" in violation for violation in violations)


class TestSimulatedTime:
    def test_per_level_costs_aggregate(self, backing):
        from repro.storage.device import CostModel
        from repro.storage.hierarchy import LevelSpec, MemoryHierarchy

        (block,) = _seed(backing, 1)
        hierarchy = MemoryHierarchy(
            backing,
            [
                LevelSpec("cache", 2, cost_model=CostModel(0.1, 0.1, 0.2, 0.2)),
                LevelSpec("dram", 4, access_cost=1.0),
            ],
        )
        hierarchy.read(block)   # misses both levels, reaches backing
        hierarchy.read(block)   # cache hit
        # cache: 2 reads x 0.1; dram: 1 read x 1.0; backing: 1 random read.
        expected = 2 * 0.1 + 1 * 1.0 + backing.cost_model.random_read
        assert hierarchy.simulated_time == pytest.approx(expected)

    def test_backing_pricing_survives_counter_resets(self, backing):
        (block,) = _seed(backing, 1)
        hierarchy = make_hierarchy(backing, [0])
        backing.reset_counters()
        hierarchy.read(block)
        before = hierarchy.simulated_time
        backing.reset_counters()  # must not zero the hierarchy's meter
        assert hierarchy.simulated_time == before
        assert hierarchy.backing_reads == 1


class TestTracing:
    def test_per_level_evict_and_write_back_events(self, backing):
        from repro.obs.sinks import ListSink
        from repro.obs.tracer import RecordingTracer

        b0, b1 = _seed(backing, 2)
        hierarchy = make_hierarchy(backing, [1, 4])
        sink = ListSink()
        hierarchy.set_tracer(RecordingTracer(sink))
        hierarchy.write(b0, "v0")
        hierarchy.write(b1, "v1")  # evicts dirty b0 out of the top level
        sources = {
            event.source for event in sink.events if event.op == "write_back"
        }
        assert "pool(L0)" in sources  # the event names the level
        evicts = [event for event in sink.events if event.op == "evict"]
        assert evicts and evicts[0].block_id == b0
