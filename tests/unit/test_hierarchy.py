"""Unit tests for the memory-hierarchy simulator (Figure 2 substrate)."""

from __future__ import annotations

import pytest

from repro.storage.device import SimulatedDevice
from repro.storage.hierarchy import LevelSpec, MemoryHierarchy


@pytest.fixture
def backing():
    return SimulatedDevice(block_bytes=64, name="disk")


def _seed(device, n):
    blocks = []
    for i in range(n):
        block = device.allocate()
        device.write(block, f"payload-{i}")
        blocks.append(block)
    return blocks


def make_hierarchy(backing, capacities):
    specs = [LevelSpec(name=f"L{i}", capacity_blocks=c) for i, c in enumerate(capacities)]
    return MemoryHierarchy(backing, specs)


class TestReads:
    def test_read_through_fills_all_levels(self, backing):
        (block,) = _seed(backing, 1)
        hierarchy = make_hierarchy(backing, [2, 4])
        backing.reset_counters()
        assert hierarchy.read(block) == "payload-0"
        assert backing.counters.reads == 1
        # Second read is served at the top level.
        assert hierarchy.read(block) == "payload-0"
        assert backing.counters.reads == 1
        assert hierarchy.levels[0].counters.reads_served == 1

    def test_miss_counts_cascade(self, backing):
        (block,) = _seed(backing, 1)
        hierarchy = make_hierarchy(backing, [2, 4])
        hierarchy.read(block)
        for level in hierarchy.levels:
            assert level.counters.reads_passed_down == 1

    def test_mid_level_hit(self, backing):
        b0, b1, b2 = _seed(backing, 3)
        hierarchy = make_hierarchy(backing, [1, 8])
        hierarchy.read(b0)
        hierarchy.read(b1)  # evicts b0 from L0; still in L1
        backing.reset_counters()
        hierarchy.read(b0)
        assert backing.counters.reads == 0
        assert hierarchy.levels[1].counters.reads_served >= 1

    def test_zero_capacity_level_always_passes(self, backing):
        (block,) = _seed(backing, 1)
        hierarchy = make_hierarchy(backing, [0, 4])
        hierarchy.read(block)
        hierarchy.read(block)
        assert hierarchy.levels[0].counters.reads_served == 0
        assert hierarchy.levels[1].counters.reads_served == 1


class TestWrites:
    def test_write_absorbed_at_top(self, backing):
        (block,) = _seed(backing, 1)
        hierarchy = make_hierarchy(backing, [2, 4])
        backing.reset_counters()
        hierarchy.write(block, "updated")
        assert backing.counters.writes == 0
        assert hierarchy.read(block) == "updated"

    def test_flush_reaches_backing(self, backing):
        (block,) = _seed(backing, 1)
        hierarchy = make_hierarchy(backing, [2, 4])
        hierarchy.write(block, "updated")
        hierarchy.flush()
        assert backing.peek(block) == "updated"

    def test_no_levels_writes_direct(self, backing):
        (block,) = _seed(backing, 1)
        hierarchy = make_hierarchy(backing, [])
        backing.reset_counters()
        hierarchy.write(block, "direct")
        assert backing.counters.writes == 1


class TestFigure2Shape:
    """Growing level n-1 capacity lowers traffic at level n and raises
    space at n-1 — the exact interaction of the paper's Figure 2."""

    def test_bigger_cache_means_less_backing_traffic(self, backing):
        import random

        blocks = _seed(backing, 16)
        # A skewed pattern (hot head, cold tail) so partial caches help;
        # a pure cyclic scan would defeat LRU at every sub-full capacity.
        rng = random.Random(3)
        pattern = [blocks[min(int(rng.expovariate(0.4)), 15)] for _ in range(300)]
        results = {}
        for capacity in (2, 8, 16):
            backing.reset_counters()
            hierarchy = make_hierarchy(backing, [capacity])
            for block in pattern:
                hierarchy.read(block)
            results[capacity] = backing.counters.reads
        assert results[16] < results[8] < results[2]

    def test_bigger_cache_means_more_space(self, backing):
        blocks = _seed(backing, 16)
        spaces = {}
        for capacity in (2, 8, 16):
            hierarchy = make_hierarchy(backing, [capacity])
            for block in blocks:
                hierarchy.read(block)
            spaces[capacity] = hierarchy.levels[0].space_bytes
        assert spaces[16] > spaces[8] > spaces[2]


class TestIntrospection:
    def test_level_lookup_by_name(self, backing):
        hierarchy = make_hierarchy(backing, [2, 4])
        assert hierarchy.level("L1").spec.capacity_blocks == 4
        with pytest.raises(KeyError):
            hierarchy.level("missing")

    def test_space_by_level(self, backing):
        blocks = _seed(backing, 4)
        hierarchy = make_hierarchy(backing, [2])
        for block in blocks:
            hierarchy.read(block)
        rows = hierarchy.space_by_level()
        assert rows[0][0] == "L0"
        assert rows[-1][0] == "disk"
        assert rows[-1][1] == 4 * backing.block_bytes
