"""Structure-specific tests for the differential family: MaSM, PDT, PBT."""

from __future__ import annotations

import pytest

from repro.methods.masm import MaSMColumn
from repro.methods.pbt import PartitionedBTree
from repro.methods.pdt import PositionalDeltaColumn
from repro.storage.device import SimulatedDevice

from tests.conftest import SMALL_BLOCK, sample_records


def masm(**kwargs):
    defaults = dict(buffer_records=16, max_runs=4)
    defaults.update(kwargs)
    return MaSMColumn(SimulatedDevice(block_bytes=SMALL_BLOCK), **defaults)


def pdt(**kwargs):
    defaults = dict(checkpoint_records=64)
    defaults.update(kwargs)
    return PositionalDeltaColumn(SimulatedDevice(block_bytes=SMALL_BLOCK), **defaults)


def pbt(**kwargs):
    defaults = dict(partition_records=64, max_partitions=4)
    defaults.update(kwargs)
    return PartitionedBTree(SimulatedDevice(block_bytes=SMALL_BLOCK), **defaults)


class TestMaSM:
    def test_updates_buffer_then_spill_as_runs(self):
        column = masm(buffer_records=8)
        column.bulk_load(sample_records(128))
        before = column.device.snapshot()
        for i in range(7):
            column.update(2 * i, i)
        assert column.device.stats_since(before).writes == 0  # buffered
        column.update(14, 99)  # 8th entry: spill
        assert column.run_count == 1
        assert column.device.counters.writes > 0

    def test_long_merge_folds_runs_into_main(self):
        column = masm(buffer_records=8, max_runs=3)
        column.bulk_load(sample_records(128))
        for i in range(64):
            column.update(2 * (i % 128), i)
        column.flush()
        runs_before_merge = column.run_count
        column.merge_updates()
        assert column.run_count == 0
        assert runs_before_merge <= 3  # auto-merge kept it bounded
        # Contents correct after the merge.
        assert column.get(0) is not None

    def test_auto_merge_at_max_runs(self):
        column = masm(buffer_records=4, max_runs=2)
        column.bulk_load(sample_records(64))
        for i in range(64):
            column.update(2 * (i % 64), i)
        assert column.run_count <= 2

    def test_newest_version_wins_across_runs(self):
        column = masm(buffer_records=4, max_runs=10)
        column.bulk_load(sample_records(32))
        for version in range(5):
            column.update(10, version)
            # Pad so each version lands in its own run.
            for pad in range(3):
                column.update(2 * pad, version)
        assert column.get(10) == 4

    def test_delete_then_merge(self):
        column = masm(buffer_records=4)
        column.bulk_load(sample_records(32))
        column.delete(10)
        column.flush()
        column.merge_updates()
        assert column.get(10) is None
        assert len(column) == 31

    def test_range_merges_all_sources(self):
        column = masm(buffer_records=4, max_runs=10)
        column.bulk_load(sample_records(64))
        column.update(10, 900)   # run or buffer
        column.insert(11, 901)   # buffer
        column.delete(12)
        result = dict(column.range_query(8, 14))
        assert result == {8: 81, 10: 900, 11: 901, 14: 141}


class TestPDT:
    def test_reads_merge_delta_without_io(self):
        column = pdt()
        column.bulk_load(sample_records(64))
        column.update(10, 999)
        before = column.device.snapshot()
        assert column.get(10) == 999
        assert column.device.stats_since(before).reads == 0  # delta hit

    def test_checkpoint_rewrites_main_and_clears_delta(self):
        column = pdt(checkpoint_records=8)
        column.bulk_load(sample_records(64))
        for i in range(7):
            column.update(2 * i, i)
        assert column.pending_deltas == 7
        column.update(14, 99)  # 8th delta: checkpoint
        assert column.pending_deltas == 0
        assert column.get(0) == 0
        assert column.get(14) == 99

    def test_insert_then_delete_cancels(self):
        column = pdt()
        column.bulk_load(sample_records(16))
        column.insert(101, 1)
        column.delete(101)
        assert column.pending_deltas == 0
        assert column.get(101) is None
        assert len(column) == 16

    def test_delta_space_charged(self):
        column = pdt(checkpoint_records=1000)
        column.bulk_load(sample_records(64))
        before = column.space_bytes()
        for i in range(32):
            column.insert(1001 + 2 * i, i)
        assert column.space_bytes() > before

    def test_checkpoint_is_sequential_rewrite(self):
        column = pdt(checkpoint_records=1000)
        column.bulk_load(sample_records(256))
        for i in range(64):
            column.update(2 * i, i)
        before = column.device.snapshot()
        column.checkpoint()
        io = column.device.stats_since(before)
        # One read pass + one write pass over the main, roughly.
        blocks = 256 // 16
        assert io.reads <= 2 * blocks
        assert blocks <= io.writes <= 2 * blocks


class TestPBT:
    def test_inserts_fill_partitions(self):
        tree = pbt(partition_records=32, max_partitions=100)
        tree.bulk_load(sample_records(64))
        for i in range(100):
            tree.insert(1001 + 2 * i, i)
        assert tree.partitions >= 3

    def test_queries_probe_partitions_newest_first(self):
        tree = pbt(partition_records=8, max_partitions=100)
        tree.bulk_load(sample_records(16))
        tree.delete(10)
        tree.insert(10, 777)  # lands in the current partition
        assert tree.get(10) == 777

    def test_merge_collapses_partitions(self):
        tree = pbt(partition_records=16, max_partitions=100)
        tree.bulk_load(sample_records(32))
        for i in range(64):
            tree.insert(1001 + 2 * i, i)
        assert tree.partitions > 1
        tree.merge_partitions()
        assert tree.partitions == 1
        assert tree.get(1001) == 0
        assert tree.get(0) == 1

    def test_merge_improves_reads(self):
        tree = pbt(partition_records=16, max_partitions=100)
        tree.bulk_load(sample_records(32))
        for i in range(64):
            tree.insert(1001 + 2 * i, i)

        def probe_cost():
            before = tree.device.snapshot()
            for key in (0, 20, 1001, 1041, 9999):
                tree.get(key)
            return tree.device.stats_since(before).reads

        cost_partitioned = probe_cost()
        tree.merge_partitions()
        assert probe_cost() < cost_partitioned

    def test_auto_merge_bounds_partitions(self):
        tree = pbt(partition_records=8, max_partitions=3)
        for i in range(200):
            tree.insert(2 * i, i)
        assert tree.partitions <= 4

    def test_merge_frees_old_blocks(self):
        tree = pbt(partition_records=16, max_partitions=100)
        tree.bulk_load(sample_records(64))
        for i in range(64):
            tree.insert(1001 + 2 * i, i)
        blocks_before = tree.device.allocated_blocks
        tree.merge_partitions()
        assert tree.device.allocated_blocks <= blocks_before
