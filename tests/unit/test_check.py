"""Unit tests for the fault-injection + audit toolkit (repro.check)."""

from __future__ import annotations

import pytest

from repro.check import (
    AuditError,
    AuditReport,
    DeviceFault,
    FaultPlan,
    FaultyDevice,
    build_audited_method,
    run_audit_session,
)
from repro.check.faults import TORN_PAYLOAD
from repro.storage.device import SimulatedDevice
from repro.workloads.spec import MIXES

from tests.conftest import SMALL_BLOCK


def _device_pair():
    backing = SimulatedDevice(block_bytes=SMALL_BLOCK)
    return backing, FaultyDevice(backing)


class TestFaultPlan:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(read_failure_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(write_failure_rate=-0.1)

    def test_nth_triggers_are_one_based(self):
        with pytest.raises(ValueError):
            FaultPlan(fail_read_at=0)
        with pytest.raises(ValueError):
            FaultPlan(fail_write_at=-3)

    def test_can_fault(self):
        assert not FaultPlan().can_fault
        assert FaultPlan(fail_read_at=1).can_fault
        assert FaultPlan(write_failure_rate=0.5).can_fault


class TestFaultyDevice:
    def test_disarmed_is_transparent(self):
        backing, device = _device_pair()
        block = device.allocate(kind="data")
        device.write(block, [1, 2, 3], used_bytes=48)
        assert device.read(block) == [1, 2, 3]
        assert backing.counters.reads == 1
        assert backing.counters.writes == 1
        assert device.counters.reads == 1  # delegated, not double-counted

    def test_nth_read_faults_and_charges_nothing(self):
        _, device = _device_pair()
        block = device.allocate(kind="data")
        device.write(block, "x", used_bytes=8)
        device.arm(FaultPlan(fail_read_at=2))
        assert device.read(block) == "x"  # read #1 passes
        reads_before = device.counters.reads
        with pytest.raises(DeviceFault) as excinfo:
            device.read(block)
        assert device.counters.reads == reads_before  # fault charged no I/O
        assert excinfo.value.op == "read"
        assert excinfo.value.block_id == block
        assert device.faults_injected == 1
        assert device.read(block) == "x"  # read #3 passes again

    def test_kind_filter_restricts_eligibility(self):
        _, device = _device_pair()
        data = device.allocate(kind="data")
        meta = device.allocate(kind="meta")
        device.write(data, "d", used_bytes=8)
        device.write(meta, "m", used_bytes=8)
        device.arm(FaultPlan(fail_read_at=1, kinds=("meta",)))
        assert device.read(data) == "d"  # ineligible: not counted
        with pytest.raises(DeviceFault):
            device.read(meta)

    def test_unallocated_block_raises_key_error_not_fault(self):
        _, device = _device_pair()
        device.arm(FaultPlan(fail_read_at=1, kinds=("data",)))
        with pytest.raises(KeyError):
            device.read(12345)

    def test_probabilistic_faults_are_deterministic(self):
        def fault_points(seed):
            _, device = _device_pair()
            block = device.allocate(kind="data")
            device.write(block, "x", used_bytes=8)
            device.arm(FaultPlan(read_failure_rate=0.3, seed=seed))
            points = []
            for index in range(50):
                try:
                    device.read(block)
                except DeviceFault:
                    points.append(index)
            return points

        assert fault_points(7) == fault_points(7)
        assert fault_points(7) != fault_points(8)

    def test_max_faults_caps_injection(self):
        _, device = _device_pair()
        block = device.allocate(kind="data")
        device.write(block, "x", used_bytes=8)
        device.arm(FaultPlan(read_failure_rate=1.0, max_faults=2))
        for _ in range(2):
            with pytest.raises(DeviceFault):
                device.read(block)
        assert device.read(block) == "x"
        assert device.faults_injected == 2

    def test_torn_write_applies_half_the_payload(self):
        backing, device = _device_pair()
        block = device.allocate(kind="data")
        device.write(block, [1, 2], used_bytes=32)
        device.arm(FaultPlan(fail_write_at=1, torn_writes=True))
        with pytest.raises(DeviceFault):
            device.write(block, [10, 20, 30, 40], used_bytes=64)
        assert backing.peek(block) == [10, 20]  # first half landed
        assert backing.used_bytes_of(block) == 32
        assert backing.counters.writes == 2  # the torn write was charged

    def test_torn_write_scars_non_list_payloads(self):
        backing, device = _device_pair()
        block = device.allocate(kind="data")
        device.write(block, {"a": 1}, used_bytes=16)
        device.arm(FaultPlan(fail_write_at=1, torn_writes=True))
        with pytest.raises(DeviceFault):
            device.write(block, {"a": 2}, used_bytes=16)
        assert backing.peek(block) == TORN_PAYLOAD
        assert backing.used_bytes_of(block) == 0

    def test_arm_resets_triggers(self):
        _, device = _device_pair()
        block = device.allocate(kind="data")
        device.write(block, "x", used_bytes=8)
        device.arm(FaultPlan(fail_read_at=3))
        device.read(block)
        device.read(block)
        device.arm(FaultPlan(fail_read_at=3))  # re-arm: counter restarts
        device.read(block)
        device.read(block)
        with pytest.raises(DeviceFault):
            device.read(block)

    def test_disarm_makes_device_transparent_again(self):
        _, device = _device_pair()
        block = device.allocate(kind="data")
        device.write(block, "x", used_bytes=8)
        device.arm(FaultPlan(read_failure_rate=1.0))
        with pytest.raises(DeviceFault):
            device.read(block)
        device.disarm()
        assert device.read(block) == "x"

    def test_delegation_of_inspection_surface(self):
        backing, device = _device_pair()
        block = device.allocate(kind="meta")
        device.write(block, [1], used_bytes=16)
        assert device.kind_of(block) == "meta"
        assert device.used_bytes_of(block) == 16
        assert device.is_allocated(block)
        assert list(device.iter_block_ids()) == [block]
        assert device.allocated_blocks == backing.allocated_blocks == 1
        assert device.used_bytes() == backing.used_bytes() == 16
        device.free(block)
        assert not backing.is_allocated(block)


class TestAuditError:
    def test_message_truncates_long_violation_lists(self):
        error = AuditError("btree", [f"violation {i}" for i in range(5)])
        assert "violation 0" in str(error)
        assert "+2 more" in str(error)
        assert error.method_name == "btree"
        assert len(error.violations) == 5


class TestAuditSession:
    def test_clean_session_is_ok(self):
        spec = MIXES["balanced"].scaled(initial_records=300, operations=150)
        method = build_audited_method("btree", SMALL_BLOCK)
        report = run_audit_session(method, spec)
        assert isinstance(report, AuditReport)
        assert report.ok
        assert report.completed == report.operations
        assert report.faults == 0
        assert "ok" in str(report)

    def test_plan_requires_faulty_device(self):
        spec = MIXES["balanced"].scaled(initial_records=50, operations=10)
        method = build_audited_method("btree", SMALL_BLOCK)  # no plan
        with pytest.raises(ValueError):
            run_audit_session(method, spec, plan=FaultPlan(fail_read_at=1))

    def test_faulted_session_counts_faults(self):
        spec = MIXES["balanced"].scaled(initial_records=300, operations=150)
        plan = FaultPlan(read_failure_rate=0.05, seed=11)
        method = build_audited_method("btree", SMALL_BLOCK, plan=plan)
        report = run_audit_session(method, spec, plan=plan)
        assert report.faults > 0
        assert report.completed + report.faults + report.rejected <= report.operations + 1

    def test_bulk_load_happens_before_arming(self):
        # A fail-on-first-write plan would kill the bulk load if armed
        # too early; the session must load cleanly first.
        spec = MIXES["balanced"].scaled(initial_records=200, operations=20)
        plan = FaultPlan(fail_write_at=1, max_faults=1)
        method = build_audited_method("sorted-column", SMALL_BLOCK, plan=plan)
        report = run_audit_session(method, spec, plan=plan)
        assert report.operations == 20

    def test_build_audited_method_wraps_when_planned(self):
        plain = build_audited_method("btree", SMALL_BLOCK)
        assert not isinstance(plain.device, FaultyDevice)
        wrapped = build_audited_method(
            "btree", SMALL_BLOCK, plan=FaultPlan(fail_read_at=1)
        )
        assert isinstance(wrapped.device, FaultyDevice)
        assert wrapped.device.plan is None  # disarmed until the session


class TestAuditHook:
    def test_audit_catches_planted_corruption(self):
        method = build_audited_method("sorted-column", SMALL_BLOCK)
        method.bulk_load([(2 * i, i) for i in range(64)])
        method.flush()
        assert method.audit() == []
        # Swap two keys inside a data block, bypassing the method.
        device = method.device
        block = next(
            b for b in device.iter_block_ids() if device.kind_of(b) == "sorted"
        )
        payload = device.peek(block)
        payload[0], payload[-1] = payload[-1], payload[0]
        violations = method.audit()
        assert violations, "audit missed an out-of-order block"

    def test_audit_catches_counter_drift(self):
        method = build_audited_method("unsorted-column", SMALL_BLOCK)
        method.bulk_load([(i, i) for i in range(40)])
        method.flush()
        method._record_count += 1  # simulate a lost update
        assert any("record count" in v for v in method.audit())


class TestBatchedFaultParity:
    """Nth-access triggers fire at the same operation index whether the
    stream arrives per-op or through ``read_many`` / ``write_many``."""

    def _loaded_device(self, blocks=12):
        backing, device = _device_pair()
        ids = []
        for index in range(blocks):
            block = device.allocate(kind="data")
            device.write(block, [index], used_bytes=8)
            ids.append(block)
        return device, ids

    @staticmethod
    def _batched(items, size):
        return [items[i:i + size] for i in range(0, len(items), size)]

    @pytest.mark.parametrize("batch_size", [1, 2, 3, 5, 12])
    def test_read_trigger_index_is_batch_invariant(self, batch_size):
        trigger = 7
        device, ids = self._loaded_device()
        device.arm(FaultPlan(fail_read_at=trigger))
        survived = 0
        with pytest.raises(DeviceFault):
            for chunk in self._batched(ids, batch_size):
                survived += len(device.read_many(chunk))
        # Reads before the fault were performed (a prefix-committing
        # batch), and the fault fired at exactly the Nth read overall.
        assert device.counters.reads == trigger - 1
        assert device.faults_injected == 1

    @pytest.mark.parametrize("batch_size", [1, 2, 3, 5, 12])
    def test_write_trigger_index_is_batch_invariant(self, batch_size):
        trigger = 7
        device, ids = self._loaded_device()
        writes_before = device.counters.writes
        device.arm(FaultPlan(fail_write_at=trigger))
        payloads = [[i, i] for i in range(len(ids))]
        used = [16] * len(ids)
        with pytest.raises(DeviceFault):
            for chunk_ids, chunk_payloads, chunk_used in zip(
                self._batched(ids, batch_size),
                self._batched(payloads, batch_size),
                self._batched(used, batch_size),
            ):
                device.write_many(chunk_ids, chunk_payloads, chunk_used)
        assert device.counters.writes - writes_before == trigger - 1
        assert device.faults_injected == 1

    def test_batched_reads_return_backing_payloads(self):
        # Regression: the armed proxy once served read_many from its own
        # (empty) block table instead of the backing device's.
        device, ids = self._loaded_device(blocks=4)
        device.arm(FaultPlan(fail_read_at=999))  # armed but never fires
        assert device.read_many(ids) == [[0], [1], [2], [3]]

    def test_batched_writes_reach_backing(self):
        backing, device = _device_pair()
        ids = [device.allocate(kind="data") for _ in range(3)]
        device.arm(FaultPlan(fail_write_at=999))
        device.write_many(ids, ["a", "b", "c"], [8, 8, 8])
        assert [backing.read(block) for block in ids] == ["a", "b", "c"]

    def test_write_many_validates_lengths_when_armed(self):
        device, ids = self._loaded_device(blocks=3)
        device.arm(FaultPlan(fail_write_at=999))
        with pytest.raises(ValueError):
            device.write_many(ids, ["only-one"], [8])

    def test_torn_write_fires_through_write_many(self):
        device, ids = self._loaded_device(blocks=3)
        device.arm(FaultPlan(fail_write_at=2, torn_writes=True))
        with pytest.raises(DeviceFault):
            device.write_many(ids, [[1, 2], [3, 4], [5, 6]], [16, 16, 16])
        # The second write was torn: a half payload reached the device.
        assert device.read(ids[1]) == [3]
        assert device.read(ids[2]) == [2]  # untouched original
