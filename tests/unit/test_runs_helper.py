"""Unit tests for the shared sorted-run helpers (repro.core.runs)."""

from __future__ import annotations

import pytest

from repro.core.runs import probe_run, scan_run
from repro.storage.device import SimulatedDevice

from tests.conftest import SMALL_BLOCK


@pytest.fixture
def run(device):
    """A three-block sorted run with fences [0, 100, 200]."""
    block_ids = []
    fences = []
    for base in (0, 100, 200):
        chunk = [(base + 2 * i, base + i) for i in range(16)]
        block_id = device.allocate(kind="run")
        device.write(block_id, chunk, used_bytes=256)
        block_ids.append(block_id)
        fences.append(chunk[0][0])
    return device, block_ids, fences


class TestProbe:
    def test_hit_in_each_block(self, run):
        device, blocks, fences = run
        for base in (0, 100, 200):
            found, value = probe_run(device, blocks, fences, base + 4)
            assert found and value == base + 2

    def test_probe_reads_exactly_one_block(self, run):
        device, blocks, fences = run
        before = device.snapshot()
        probe_run(device, blocks, fences, 104)
        assert device.stats_since(before).reads == 1

    def test_miss_inside_range(self, run):
        device, blocks, fences = run
        found, value = probe_run(device, blocks, fences, 5)  # odd: absent
        assert not found and value is None

    def test_below_minimum_is_free(self, run):
        device, blocks, fences = run
        before = device.snapshot()
        found, _ = probe_run(device, blocks, fences, -5)
        assert not found
        assert device.stats_since(before).reads == 0

    def test_empty_run(self, device):
        assert probe_run(device, [], [], 5) == (False, None)

    def test_beyond_maximum_misses(self, run):
        device, blocks, fences = run
        found, _ = probe_run(device, blocks, fences, 999)
        assert not found


class TestScan:
    def test_cross_block_range(self, run):
        device, blocks, fences = run
        result = scan_run(device, blocks, fences, 28, 104)
        keys = [key for key, _ in result]
        assert keys[0] == 28 and keys[-1] == 104
        assert keys == sorted(keys)

    def test_scan_prunes_blocks(self, run):
        device, blocks, fences = run
        before = device.snapshot()
        scan_run(device, blocks, fences, 100, 110)
        # Only the middle block qualifies (plus at most one boundary read).
        assert device.stats_since(before).reads <= 2

    def test_empty_range(self, run):
        device, blocks, fences = run
        assert scan_run(device, blocks, fences, 50, 60) == []

    def test_full_span(self, run):
        device, blocks, fences = run
        result = scan_run(device, blocks, fences, -1, 10_000)
        assert len(result) == 48

    def test_empty_run(self, device):
        assert scan_run(device, [], [], 0, 100) == []
