"""Unit tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


class TestList:
    def test_lists_methods(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "btree" in out and "lsm" in out and "zonemap" in out


class TestProfile:
    def test_profiles_a_method(self, capsys):
        code = main(["profile", "btree", "--records", "500", "--ops", "100"])
        assert code == 0
        out = capsys.readouterr().out
        assert "btree" in out
        assert "RO" in out and "UO" in out and "MO" in out

    def test_unknown_method_is_usage_error(self, capsys):
        code = main(["profile", "nonexistent", "--records", "100", "--ops", "10"])
        assert code == 2
        assert "unknown access method" in capsys.readouterr().err

    def test_unknown_workload_rejected(self, capsys):
        assert main(["profile", "btree", "--workload", "nope"]) == 2


class TestTriangle:
    def test_renders_triangle(self, capsys):
        code = main(["triangle", "--records", "400", "--ops", "80"])
        assert code == 0
        out = capsys.readouterr().out
        assert "read-optimized" in out
        assert "R" in out and "U" in out and "M" in out


class TestWizard:
    def test_analytic_mode(self, capsys):
        code = main(["wizard", "--analytic", "--workload", "write-heavy"])
        assert code == 0
        out = capsys.readouterr().out
        assert "rank" in out
        assert "classified" in out

    def test_measured_mode(self, capsys):
        code = main([
            "wizard", "--records", "300", "--ops", "60", "--top", "3",
            "--hardware", "flash",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "flash" in out

    def test_requires_command(self, capsys):
        assert main([]) == 2


class TestRecordReplay:
    def test_record_then_replay(self, capsys, tmp_path):
        trace = tmp_path / "w.trace"
        assert main([
            "record", "--workload", "balanced", "--records", "300",
            "--ops", "80", "--output", str(trace),
        ]) == 0
        out = capsys.readouterr().out
        assert "recorded 300 records and 80 operations" in out
        assert trace.exists()

        assert main(["replay", str(trace), "--method", "btree"]) == 0
        out = capsys.readouterr().out
        assert "btree" in out and "RO" in out

    def test_replay_is_deterministic(self, capsys, tmp_path):
        trace = tmp_path / "w.trace"
        main(["record", "--records", "200", "--ops", "50", "--output", str(trace)])
        capsys.readouterr()
        main(["replay", str(trace), "--method", "lsm"])
        first = capsys.readouterr().out
        main(["replay", str(trace), "--method", "lsm"])
        second = capsys.readouterr().out
        assert first == second

    def test_replay_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["replay", str(tmp_path / "missing.trace")])


class TestReproduce:
    def test_report_sections_present(self, capsys, tmp_path):
        output = tmp_path / "report.txt"
        assert main(["reproduce", "--output", str(output)]) == 0
        out = capsys.readouterr().out
        for needle in (
            "Propositions 1-3",
            "Table 1",
            "Figure 1",
            "RUM Conjecture",
            "conjecture holds",
        ):
            assert needle in out, needle
        assert output.read_text() == out.rstrip("\n") + "\n" or output.exists()

    def test_report_confirms_prop_constants(self, capsys):
        main(["reproduce"])
        out = capsys.readouterr().out
        assert "RO = 1.0 exactly      1.00" in out
        assert "UO = 2.0 exactly      2.00" in out


class TestTraceAndStats:
    def test_trace_writes_jsonl_and_prints_breakdown(self, capsys, tmp_path):
        import json

        output = tmp_path / "events.jsonl"
        code = main([
            "trace", "--method", "btree", "--workload", "balanced",
            "--records", "400", "--ops", "120", "--output", str(output),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "per-op-type cost breakdown" in out
        assert "point_query" in out and "insert" in out
        assert "blocks/op" in out
        lines = output.read_text().splitlines()
        assert lines, "no events written"
        events = [json.loads(line) for line in lines]
        assert [event["seq"] for event in events] == list(range(len(events)))
        assert {event["op"] for event in events} >= {"alloc", "read", "write"}
        assert f"wrote {len(events)} events" in out

    def test_trace_is_deterministic_across_runs(self, capsys, tmp_path):
        args = [
            "trace", "--method", "lsm", "--workload", "write-heavy",
            "--records", "300", "--ops", "100",
        ]
        first, second = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        main(args + ["--output", str(first)])
        out_first = capsys.readouterr().out
        main(args + ["--output", str(second)])
        out_second = capsys.readouterr().out
        assert first.read_text() == second.read_text()
        assert out_first.replace(str(first), "") == out_second.replace(str(second), "")

    def test_stats_prints_histogram_table(self, capsys):
        code = main([
            "stats", "--method", "btree", "--workload", "balanced",
            "--records", "400", "--ops", "120",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "per-op-type cost breakdown" in out
        assert "p50" in out and "p95" in out
        assert "RO=" in out and "UO=" in out and "MO=" in out

    def test_stats_breakdown_rows_follow_canonical_op_order(self, capsys):
        """The breakdown table is pinned to CANONICAL_OP_ORDER, not
        alphabetical — point/range queries first, then mutations, then
        flush — so outputs diff cleanly across runs and methods."""
        code = main([
            "stats", "--method", "btree", "--workload", "balanced",
            "--records", "400", "--ops", "200",
        ])
        assert code == 0
        out = capsys.readouterr().out
        from repro.obs.metrics import CANONICAL_OP_ORDER

        positions = [
            (out.index(label), label)
            for label in CANONICAL_OP_ORDER
            if label in out
        ]
        assert len(positions) >= 4, "workload too small to exercise ordering"
        assert positions == sorted(positions), (
            "breakdown rows out of canonical order: "
            f"{[label for _, label in sorted(positions)]}"
        )

    def test_stats_matches_profile_command_numbers(self, capsys):
        args = ["--workload", "balanced", "--records", "400", "--ops", "120"]
        main(["stats", "--method", "btree"] + args)
        stats_out = capsys.readouterr().out
        main(["profile", "btree"] + args)
        profile_out = capsys.readouterr().out
        # Same seed, same spec: the profile line in `stats` agrees with
        # the RO column printed by `profile`.
        ro = stats_out.split("RO=")[1].split()[0]
        assert ro.rstrip("0").rstrip(".") in profile_out or ro in profile_out


class TestExplainAndFlame:
    # Write-heavy and long enough that LSM inserts overflow the memtable
    # mid-run, so the tree shows flush and compaction under op.insert.
    ARGS = ["--workload", "write-heavy", "--records", "2000", "--ops", "1500"]

    def test_explain_prints_audited_span_tree(self, capsys):
        code = main(["explain", "lsm"] + self.ARGS)
        assert code == 0
        out = capsys.readouterr().out
        assert "op.insert" in out and "lsm.put" in out
        assert "lsm.flush" in out
        assert "totals: RO=" in out and "UO=" in out and "MO=" in out
        assert "audit: span attribution sums exactly" in out
        assert "AUDIT:" not in out

    def test_explain_json_payload_feeds_the_gate(self, capsys, tmp_path):
        import json

        output = tmp_path / "profile.json"
        code = main(
            ["explain", "btree", "--json", "--output", str(output)]
            + self.ARGS
        )
        assert code == 0
        payload = json.loads(output.read_text())
        assert payload["method"] == "btree"
        assert payload["audit"] == []
        assert payload["ops_per_sec"] > 0
        paths = [row["path"] for row in payload["spans"]]
        assert any(path.endswith("btree.descent") for path in paths)
        for key in ("read_overhead", "update_overhead", "memory_overhead"):
            assert key in payload["totals"]

    def test_explain_reports_executed_operation_count(self, capsys, tmp_path):
        """Regression: ops/sec once divided by the *requested* operation
        count; it must divide by the operations the measurement loop
        actually accounted, and surface that count."""
        import json

        output = tmp_path / "profile.json"
        args = ["--workload", "balanced", "--records", "300", "--ops", "90"]
        code = main(
            ["explain", "btree", "--json", "--output", str(output)] + args
        )
        assert code == 0
        payload = json.loads(output.read_text())
        assert payload["operations"] == 90
        assert payload["operations_executed"] == 90  # full generator stream
        assert payload["ops_per_sec"] == pytest.approx(
            payload["operations_executed"] / payload["elapsed_seconds"]
        )
        capsys.readouterr()
        code = main(["explain", "btree"] + args)
        assert code == 0
        out = capsys.readouterr().out
        assert "(over 90 executed)" in out

    def test_explain_runs_are_deterministic(self, capsys, tmp_path):
        import json

        a, b = tmp_path / "a.json", tmp_path / "b.json"
        for path in (a, b):
            main(
                ["explain", "lsm", "--json", "--output", str(path)]
                + self.ARGS
            )
            capsys.readouterr()
        first = json.loads(a.read_text())
        second = json.loads(b.read_text())
        # Wall-clock keys differ; everything attributed must not.
        for volatile in ("elapsed_seconds", "ops_per_sec"):
            first.pop(volatile), second.pop(volatile)
        first["totals"].pop("simulated_time")
        second["totals"].pop("simulated_time")
        assert first == second

    def test_flame_emits_folded_stacks(self, capsys, tmp_path):
        output = tmp_path / "lsm.folded"
        code = main(
            ["flame", "--method", "lsm", "--output", str(output)] + self.ARGS
        )
        assert code == 0
        lines = output.read_text().splitlines()
        assert lines, "no folded stacks written"
        for line in lines:
            stack, _, weight = line.rpartition(" ")
            assert stack and int(weight) > 0  # "a;b;c <integer>" shape
        assert any(";" in line for line in lines)  # nested frames exist
        assert f"wrote {len(lines)} folded stacks" in capsys.readouterr().out

    def test_flame_weight_selects_the_metric(self, capsys):
        code = main(
            ["flame", "--method", "btree", "--weight", "events"] + self.ARGS
        )
        assert code == 0
        out = capsys.readouterr().out.splitlines()
        assert all(int(line.rpartition(" ")[2]) > 0 for line in out if line)


class TestSweep:
    ARGS = ["--records", "300", "--ops", "80"]

    def test_sweep_named_methods(self, capsys, tmp_path):
        code = main([
            "sweep", "--methods", "btree,lsm",
            "--cache-dir", str(tmp_path / "cache"),
        ] + self.ARGS)
        assert code == 0
        out = capsys.readouterr().out
        assert "btree" in out and "lsm" in out
        assert "executed 2 cell(s), 0 from cache" in out

    def test_sweep_warm_rerun_uses_cache(self, capsys, tmp_path):
        args = [
            "sweep", "--methods", "btree,lsm",
            "--cache-dir", str(tmp_path / "cache"),
        ] + self.ARGS
        main(args)
        capsys.readouterr()
        assert main(args) == 0
        assert "executed 0 cell(s), 2 from cache" in capsys.readouterr().out

    def test_sweep_no_cache_always_executes(self, capsys, tmp_path):
        args = [
            "sweep", "--methods", "btree", "--no-cache",
            "--cache-dir", str(tmp_path / "cache"),
        ] + self.ARGS
        main(args)
        capsys.readouterr()
        main(args)
        assert "executed 1 cell(s), 0 from cache" in capsys.readouterr().out

    def test_sweep_clear_cache(self, capsys, tmp_path):
        args = [
            "sweep", "--methods", "btree",
            "--cache-dir", str(tmp_path / "cache"),
        ] + self.ARGS
        main(args)
        capsys.readouterr()
        assert main(args + ["--clear-cache"]) == 0
        out = capsys.readouterr().out
        assert "cleared 1 cached result(s)" in out
        assert "executed 1 cell(s), 0 from cache" in out

    def test_sweep_parallel_matches_serial(self, capsys, tmp_path):
        base = ["sweep", "--methods", "btree,lsm,hash-index", "--no-cache",
                "--cache-dir", str(tmp_path / "c")] + self.ARGS
        main(base + ["--jobs", "1"])
        serial_out = capsys.readouterr().out
        main(base + ["--jobs", "3"])
        parallel_out = capsys.readouterr().out
        assert serial_out.replace("jobs=1", "") == parallel_out.replace("jobs=3", "")

    def test_sweep_profile_reports_the_schedule(self, capsys, tmp_path):
        code = main([
            "sweep", "--methods", "btree,lsm", "--profile",
            "--cache-dir", str(tmp_path / "cache"),
        ] + self.ARGS)
        assert code == 0
        out = capsys.readouterr().out
        assert "scheduler profile: 2 executed, 0 cached" in out
        assert "dispatch#" in out and "wall ms" in out
        # Both executed cells carry a dispatch rank and a measured wall.
        for name in ("btree", "lsm"):
            row = next(
                line for line in out.splitlines()
                if name in line and "executed" in line
            )
            assert row.count("-") == 0, row

    def test_sweep_profile_marks_cached_cells(self, capsys, tmp_path):
        args = [
            "sweep", "--methods", "btree", "--profile",
            "--cache-dir", str(tmp_path / "cache"),
        ] + self.ARGS
        main(args)
        capsys.readouterr()
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "scheduler profile: 0 executed, 1 cached" in out
        row = next(
            line for line in out.splitlines()
            if "btree" in line and "cached" in line and "profile:" not in line
        )
        assert "executed" not in row

    def test_sweep_unknown_method_rejected(self, capsys, tmp_path):
        code = main([
            "sweep", "--methods", "btree,nonexistent",
            "--cache-dir", str(tmp_path / "cache"),
        ] + self.ARGS)
        assert code == 2
        assert "unknown access method(s): nonexistent" in capsys.readouterr().err

    def test_sweep_device_preset(self, capsys, tmp_path):
        code = main([
            "sweep", "--methods", "btree", "--device", "disk",
            "--cache-dir", str(tmp_path / "cache"),
        ] + self.ARGS)
        assert code == 0
        assert "on disk" in capsys.readouterr().out


class TestReproduceJobs:
    def test_reproduce_jobs_flag_accepted(self, capsys, tmp_path):
        # Full reproduce runs are covered by TestReproduce; here we only
        # check the flag parses and threads through.
        import repro.analysis.reproduce as reproduce_module

        seen = {}

        def fake_reproduce(jobs=1):
            seen["jobs"] = jobs
            return "report"

        original = reproduce_module.reproduce
        reproduce_module.reproduce = fake_reproduce
        try:
            assert main(["reproduce", "--jobs", "3"]) == 0
        finally:
            reproduce_module.reproduce = original
        assert seen["jobs"] == 3
        assert "report" in capsys.readouterr().out


class TestAudit:
    ARGS = ["--records", "300", "--ops", "120", "--block-bytes", "512"]

    def test_clean_audit_of_named_methods(self, capsys):
        code = main(["audit", "--methods", "btree,lsm"] + self.ARGS)
        assert code == 0
        out = capsys.readouterr().out
        assert "clean audit of 2 method(s)" in out
        assert "btree" in out and "lsm" in out
        assert "FAIL" not in out

    def test_audit_defaults_to_all_but_bitmap(self, capsys):
        code = main(["audit", "--records", "120", "--ops", "30",
                     "--block-bytes", "512", "--audit-every", "0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "bitmap" not in out
        assert "zonemap" in out and "skiplist" in out

    def test_fault_injected_audit_is_informational(self, capsys):
        code = main([
            "audit", "--methods", "sorted-column",
            "--fault-rate", "0.05", "--torn", "--fault-seed", "3",
        ] + self.ARGS)
        assert code == 0  # faulted runs never gate
        out = capsys.readouterr().out
        assert "fault-injected audit" in out
        assert "informational" in out

    def test_nth_write_fault_is_deterministic(self, capsys):
        args = [
            "audit", "--methods", "lsm", "--fail-write-at", "5",
            "--max-faults", "1",
        ] + self.ARGS
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        second = capsys.readouterr().out
        assert first == second

    def test_audit_unknown_method_rejected(self, capsys):
        code = main(["audit", "--methods", "btree,nonexistent"] + self.ARGS)
        assert code == 2
        assert "unknown access method(s): nonexistent" in capsys.readouterr().err


class TestHierarchy:
    ARGS = ["hierarchy", "--blocks", "96", "--accesses", "1200"]

    @staticmethod
    def _table_rows(out):
        """Numeric cells of the per-level table, one list per data row."""
        lines = out.splitlines()
        start = next(i for i, line in enumerate(lines) if line.startswith("-----"))
        rows = []
        for line in lines[start + 1:]:
            cells = line.split()
            if len(cells) < 7 or not cells[1].isdigit():
                break
            rows.append((cells[0], [int(cell) for cell in cells[2:7]]))
        return rows

    def test_exits_zero_and_audit_holds(self, capsys):
        assert main(self.ARGS + ["--capacities", "8,32"]) == 0
        out = capsys.readouterr().out
        assert "per-level traffic" in out
        assert "conservation and clean-frame coherence hold" in out

    def test_table_rows_sum_consistently(self, capsys):
        assert main(self.ARGS + ["--capacities", "4,16,48"]) == 0
        out = capsys.readouterr().out
        rows = self._table_rows(out)
        assert len(rows) == 4  # three levels plus the backing row
        for (_, upper), (_, lower) in zip(rows, rows[1:]):
            reads_in, reads_served, reads_down, writes_in, writes_down = upper
            assert reads_in == reads_served + reads_down
            assert lower[0] == reads_down      # reads reaching next level
            assert lower[3] == writes_down     # writes reaching next level

    def test_write_through_reaches_backing(self, capsys):
        assert main(self.ARGS + [
            "--capacities", "8,32", "--write-policy", "write-through",
        ]) == 0
        rows = self._table_rows(capsys.readouterr().out)
        top_writes_in = rows[0][1][3]
        backing_writes_in = rows[-1][1][3]
        assert backing_writes_in == top_writes_in  # every write flows down

    def test_bad_capacities_rejected(self, capsys):
        assert main(["hierarchy", "--capacities", "eight"]) == 2
        assert main(["hierarchy", "--capacities", ""]) == 2
        err = capsys.readouterr().err
        assert "comma-separated integers" in err
        assert "at least one level" in err


class TestServeCommand:
    ARGS = ["--clients", "2", "--txns", "4", "--records", "48"]

    def test_clean_run_exits_zero(self, capsys):
        assert main(["serve"] + self.ARGS) == 0
        out = capsys.readouterr().out
        assert "client" in out and "commits" in out
        assert "p50" in out and "p99" in out
        assert "RO=" in out and "UO=" in out and "MO=" in out

    def test_crash_and_recover_exits_zero(self, capsys):
        code = main([
            "serve", "--crash-write-at", "9", "--clients", "2",
            "--txns", "10", "--records", "32",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "crashed during transaction" in out
        assert "recovered:" in out
        assert "audit clean" in out

    def test_torn_crash_and_recover_exits_zero(self, capsys):
        code = main([
            "serve", "--crash-write-at", "12", "--torn", "--clients", "2",
            "--txns", "10", "--records", "32",
        ])
        assert code == 0
        assert "recovered:" in capsys.readouterr().out

    def test_unknown_method_is_usage_error(self, capsys):
        assert main(["serve", "--method", "nope"] + self.ARGS) == 2
        assert "unknown access method" in capsys.readouterr().err

    def test_crash_trigger_never_firing_exits_one(self, capsys):
        # One client, one tiny txn: the 500th write never happens.
        code = main([
            "serve", "--crash-write-at", "500", "--clients", "1",
            "--txns", "1", "--records", "16",
        ])
        assert code == 1
        assert "no crash" in capsys.readouterr().out

    def test_group_commit_crash_and_recover(self, capsys):
        code = main([
            "serve", "--crash-write-at", "6", "--group-commit", "4",
            "--clients", "2", "--txns", "10", "--records", "32",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "crashed during transaction" in out
        assert "acknowledged key(s) survived" in out
        assert "audit clean" in out

    def test_hierarchy_mounted_crash_and_recover(self, capsys):
        code = main([
            "serve", "--crash-write-at", "9", "--hierarchy", "8,32",
            "--clients", "2", "--txns", "10", "--records", "32",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "recovered:" in out
        assert "audit clean" in out

    def test_torn_group_commit_crash_behind_hierarchy(self, capsys):
        # The tentpole invariant end to end: a torn WAL write behind the
        # chained write-back stack must never lose an acked commit.
        code = main([
            "serve", "--crash-write-at", "4", "--torn",
            "--group-commit", "4", "--hierarchy", "8,32",
            "--clients", "2", "--txns", "10", "--records", "32",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "audit clean" in out


class TestBenchServeCommand:
    ARGS = ["--clients", "8", "--txns", "5", "--records", "64"]

    def test_bench_exits_zero_and_reports(self, capsys):
        assert main(["bench-serve"] + self.ARGS) == 0
        out = capsys.readouterr().out
        # One latency row per client plus the RUM footer.
        assert out.count("\n") > 8
        assert "wal_syncs=" in out and "checkpoints=" in out

    def test_bench_is_deterministic(self, capsys):
        assert main(["bench-serve"] + self.ARGS) == 0
        first = capsys.readouterr().out
        assert main(["bench-serve"] + self.ARGS) == 0
        assert capsys.readouterr().out == first

    def test_unknown_distribution_is_usage_error(self, capsys):
        code = main(["bench-serve", "--distribution", "nope"] + self.ARGS)
        assert code == 2
        assert "unknown distribution" in capsys.readouterr().err

    def test_group_commit_reports_policy_and_fewer_wal_blocks(self, capsys):
        assert main(["bench-serve"] + self.ARGS) == 0
        per_commit = capsys.readouterr().out
        args = ["bench-serve", "--group-commit", "8"] + self.ARGS
        assert main(args) == 0
        grouped = capsys.readouterr().out
        assert "sync_policy=every-commit" in per_commit
        assert "sync_policy=group=8" in grouped

        def wal_blocks(out):
            for token in out.split():
                if token.startswith("wal_blocks_written="):
                    return int(token.split("=")[1])
            raise AssertionError(f"no wal_blocks_written in:\n{out}")

        assert wal_blocks(grouped) < wal_blocks(per_commit)

    def test_sync_deadline_accepted(self, capsys):
        args = ["bench-serve", "--sync-deadline", "20"] + self.ARGS
        assert main(args) == 0
        assert "sync_policy=deadline=20" in capsys.readouterr().out

    def test_hierarchy_mounted_bench(self, capsys):
        args = ["bench-serve", "--hierarchy", "8,32",
                "--group-commit", "4"] + self.ARGS
        assert main(args) == 0
        assert "sync_policy=group=4" in capsys.readouterr().out


class TestExitCodeContract:
    """Every subcommand honors 0 = clean, 1 = check failed, 2 = usage."""

    CLEAN = {
        "sweep": ["sweep", "--methods", "btree", "--records", "200",
                  "--ops", "40", "--no-cache"],
        "audit": ["audit", "--methods", "btree", "--records", "200",
                  "--ops", "40", "--block-bytes", "512"],
        "explain": ["explain", "btree", "--records", "200", "--ops", "40"],
        "hierarchy": ["hierarchy", "--capacities", "8,32", "--blocks", "64",
                      "--accesses", "400"],
        "serve": ["serve", "--clients", "2", "--txns", "3",
                  "--records", "48"],
        "bench-serve": ["bench-serve", "--clients", "2", "--txns", "3",
                        "--records", "48"],
        "serve-grouped": ["serve", "--group-commit", "4", "--clients", "2",
                          "--txns", "3", "--records", "48"],
        "serve-hier": ["serve", "--hierarchy", "8,64", "--clients", "2",
                       "--txns", "3", "--records", "48"],
        "bench-serve-grouped": ["bench-serve", "--group-commit", "4",
                                "--sync-deadline", "50", "--clients", "2",
                                "--txns", "3", "--records", "48"],
        "top": ["top", "--method", "btree", "--records", "200",
                "--ops", "40"],
        "serve-live": ["serve", "--live-window", "50", "--clients", "2",
                       "--txns", "3", "--records", "48"],
    }
    USAGE = {
        "sweep": ["sweep", "--methods", "nope"],
        "audit": ["audit", "--methods", "nope"],
        "explain": ["explain", "nope"],
        "hierarchy": ["hierarchy", "--capacities", "zero"],
        "serve": ["serve", "--method", "nope"],
        "bench-serve": ["bench-serve", "--method", "nope"],
        "serve-grouped": ["serve", "--group-commit", "0"],
        "serve-deadline": ["serve", "--sync-deadline", "-1"],
        "serve-hier": ["serve", "--hierarchy", "zero"],
        "bench-serve-grouped": ["bench-serve", "--group-commit", "0"],
        "top": ["top", "--method", "nope"],
        "serve-live": ["serve", "--live-window", "0"],
    }

    @pytest.mark.parametrize("command", sorted(CLEAN))
    def test_clean_run_returns_zero(self, command, capsys):
        assert main(self.CLEAN[command]) == 0

    @pytest.mark.parametrize("command", sorted(USAGE))
    def test_usage_error_returns_two(self, command, capsys):
        assert main(self.USAGE[command]) == 2
        assert capsys.readouterr().err  # the reason reaches stderr

    @pytest.mark.parametrize("command", sorted(USAGE))
    def test_unparseable_flag_returns_two(self, command, capsys):
        subcommand = self.USAGE[command][0]
        assert main([subcommand, "--definitely-not-a-flag"]) == 2


class TestTopCommand:
    ARGS = ["--method", "btree", "--records", "300", "--ops", "240"]

    def test_clean_run_renders_frames_and_conservation(self, capsys):
        assert main(["top"] + self.ARGS) == 0
        out = capsys.readouterr().out
        assert "win" in out and "drift" in out
        assert "conservation: window sums match the whole-run totals" in out

    def test_json_export_parses_and_conserves(self, capsys):
        assert main(["top", "--json"] + self.ARGS) == 0
        result = json.loads(capsys.readouterr().out)
        assert result["conserved"] is True
        assert result["totals"] == result["run_totals"]
        assert result["frames"]

    def test_json_is_byte_identical_across_jobs(self, capsys):
        assert main(["top", "--json", "--jobs", "1"] + self.ARGS) == 0
        serial = capsys.readouterr().out
        assert main(["top", "--json", "--jobs", "2"] + self.ARGS) == 0
        assert capsys.readouterr().out == serial

    def test_output_flag_writes_the_json(self, capsys, tmp_path):
        target = tmp_path / "frames.json"
        args = ["top", "--json", "--output", str(target)] + self.ARGS
        assert main(args) == 0
        on_disk = json.loads(target.read_text())
        assert on_disk["conserved"] is True

    def test_window_must_be_positive(self, capsys):
        assert main(["top", "--window", "0"] + self.ARGS[2:]) == 2
        assert "window" in capsys.readouterr().err

    def test_unknown_method_is_usage_error(self, capsys):
        assert main(["top", "--method", "nope"]) == 2
        assert "unknown access method" in capsys.readouterr().err

    def test_drifting_workload_reports_a_transition(self, capsys):
        args = [
            "top", "--method", "lsm", "--workload", "write-heavy",
            "--records", "400", "--ops", "400", "--window", "100",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "drift transitions:" in out


class TestServeLiveWindow:
    ARGS = ["--clients", "2", "--txns", "4", "--records", "48"]

    def test_serve_renders_live_table(self, capsys):
        assert main(["serve", "--live-window", "50"] + self.ARGS) == 0
        out = capsys.readouterr().out
        assert "live serving-tier windows" in out
        assert "commits" in out

    def test_bench_serve_renders_live_table(self, capsys):
        args = ["bench-serve", "--live-window", "30",
                "--group-commit", "4"] + self.ARGS
        assert main(args) == 0
        assert "live serving-tier windows" in capsys.readouterr().out

    def test_live_window_must_be_positive(self, capsys):
        code = main(["serve", "--live-window", "-5"] + self.ARGS)
        assert code == 2
        assert "live-window" in capsys.readouterr().err

    def test_without_the_flag_no_live_table(self, capsys):
        assert main(["serve"] + self.ARGS) == 0
        assert "live serving-tier windows" not in capsys.readouterr().out
