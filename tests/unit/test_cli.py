"""Unit tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestList:
    def test_lists_methods(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "btree" in out and "lsm" in out and "zonemap" in out


class TestProfile:
    def test_profiles_a_method(self, capsys):
        code = main(["profile", "btree", "--records", "500", "--ops", "100"])
        assert code == 0
        out = capsys.readouterr().out
        assert "btree" in out
        assert "RO" in out and "UO" in out and "MO" in out

    def test_unknown_method_raises(self):
        with pytest.raises(KeyError):
            main(["profile", "nonexistent", "--records", "100", "--ops", "10"])

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["profile", "btree", "--workload", "nope"])


class TestTriangle:
    def test_renders_triangle(self, capsys):
        code = main(["triangle", "--records", "400", "--ops", "80"])
        assert code == 0
        out = capsys.readouterr().out
        assert "read-optimized" in out
        assert "R" in out and "U" in out and "M" in out


class TestWizard:
    def test_analytic_mode(self, capsys):
        code = main(["wizard", "--analytic", "--workload", "write-heavy"])
        assert code == 0
        out = capsys.readouterr().out
        assert "rank" in out
        assert "classified" in out

    def test_measured_mode(self, capsys):
        code = main([
            "wizard", "--records", "300", "--ops", "60", "--top", "3",
            "--hardware", "flash",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "flash" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestRecordReplay:
    def test_record_then_replay(self, capsys, tmp_path):
        trace = tmp_path / "w.trace"
        assert main([
            "record", "--workload", "balanced", "--records", "300",
            "--ops", "80", "--output", str(trace),
        ]) == 0
        out = capsys.readouterr().out
        assert "recorded 300 records and 80 operations" in out
        assert trace.exists()

        assert main(["replay", str(trace), "--method", "btree"]) == 0
        out = capsys.readouterr().out
        assert "btree" in out and "RO" in out

    def test_replay_is_deterministic(self, capsys, tmp_path):
        trace = tmp_path / "w.trace"
        main(["record", "--records", "200", "--ops", "50", "--output", str(trace)])
        capsys.readouterr()
        main(["replay", str(trace), "--method", "lsm"])
        first = capsys.readouterr().out
        main(["replay", str(trace), "--method", "lsm"])
        second = capsys.readouterr().out
        assert first == second

    def test_replay_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["replay", str(tmp_path / "missing.trace")])


class TestReproduce:
    def test_report_sections_present(self, capsys, tmp_path):
        output = tmp_path / "report.txt"
        assert main(["reproduce", "--output", str(output)]) == 0
        out = capsys.readouterr().out
        for needle in (
            "Propositions 1-3",
            "Table 1",
            "Figure 1",
            "RUM Conjecture",
            "conjecture holds",
        ):
            assert needle in out, needle
        assert output.read_text() == out.rstrip("\n") + "\n" or output.exists()

    def test_report_confirms_prop_constants(self, capsys):
        main(["reproduce"])
        out = capsys.readouterr().out
        assert "RO = 1.0 exactly      1.00" in out
        assert "UO = 2.0 exactly      2.00" in out
