"""Adaptive structures: cracking and adaptive merging.

The defining property (paper Section 4, "Adaptive access methods"): the
read overhead *decreases as queries arrive*, paid for by reorganization
writes — the E12 trajectory.
"""

from __future__ import annotations

import pytest

from repro.methods.adaptive_merging import AdaptiveMergingColumn
from repro.methods.cracking import CrackedColumn
from repro.storage.device import SimulatedDevice

from tests.conftest import SMALL_BLOCK, sample_records


def cracked(**kwargs):
    return CrackedColumn(SimulatedDevice(block_bytes=SMALL_BLOCK), **kwargs)


def merging(**kwargs):
    defaults = dict(run_records=64)
    defaults.update(kwargs)
    return AdaptiveMergingColumn(SimulatedDevice(block_bytes=SMALL_BLOCK), **defaults)


class TestCrackingAdaptivity:
    def test_repeated_query_gets_cheaper(self):
        column = cracked()
        column.bulk_load(sample_records(2000))

        def cost(lo, hi):
            before = column.device.snapshot()
            column.range_query(lo, hi)
            return column.device.stats_since(before).read_bytes

        first = cost(100, 200)
        second = cost(100, 200)
        assert second < first

    def test_pieces_accumulate_with_distinct_queries(self):
        column = cracked()
        column.bulk_load(sample_records(2000))
        assert column.pieces == 1
        column.range_query(10, 50)
        column.range_query(500, 600)
        assert column.pieces >= 4  # two boundaries per range

    def test_cracks_write_data(self):
        column = cracked()
        column.bulk_load(sample_records(2000))
        before = column.device.snapshot()
        column.range_query(100, 200)
        io = column.device.stats_since(before)
        assert io.write_bytes > 0  # reorganization is charged

    def test_query_results_unaffected_by_cracking(self):
        column = cracked()
        records = sample_records(500)
        column.bulk_load(records)
        expected = [(k, v) for k, v in sorted(records) if 100 <= k <= 300]
        for _ in range(3):
            assert column.range_query(100, 300) == expected

    def test_point_query_cracks_too(self):
        column = cracked()
        column.bulk_load(sample_records(1000))

        def cost(key):
            before = column.device.snapshot()
            column.get(key)
            return column.device.stats_since(before).read_bytes

        first = cost(500)
        second = cost(500)
        assert second < first

    def test_pending_merge_resets_cracker(self):
        column = cracked(pending_limit=4)
        column.bulk_load(sample_records(100))
        column.range_query(10, 20)
        assert column.pieces > 1
        for i in range(4):  # trips the pending merge
            column.insert(10_000 + i, i)
        assert column.pieces == 1
        assert column.get(10_001) == 1

    def test_space_includes_cracker_index(self):
        column = cracked()
        column.bulk_load(sample_records(1000))
        before = column.space_bytes()
        column.range_query(100, 200)
        assert column.space_bytes() > before


class TestAdaptiveMerging:
    def test_queried_ranges_migrate_to_final(self):
        column = merging()
        column.bulk_load(sample_records(500))
        assert column.merged_fraction == 0.0
        column.range_query(0, 200)
        assert column.merged_fraction > 0.0
        assert column.remaining_run_records < 500

    def test_repeated_query_gets_cheaper(self):
        column = merging()
        column.bulk_load(sample_records(1000))

        def cost():
            before = column.device.snapshot()
            column.range_query(200, 400)
            return column.device.stats_since(before).read_bytes

        first = cost()
        second = cost()
        assert second < first

    def test_full_scan_merges_everything(self):
        column = merging()
        records = sample_records(300)
        column.bulk_load(records)
        result = column.range_query(-1, 10**9)
        assert result == sorted(records)
        assert column.merged_fraction == 1.0
        assert column.remaining_run_records == 0

    def test_results_correct_during_migration(self):
        column = merging()
        records = sample_records(400)
        column.bulk_load(records)
        oracle = dict(records)
        for lo, hi in ((0, 100), (50, 150), (600, 700), (0, 800)):
            expected = sorted((k, v) for k, v in oracle.items() if lo <= k <= hi)
            assert column.range_query(lo, hi) == expected

    def test_merge_work_charged_to_queries(self):
        column = merging()
        column.bulk_load(sample_records(500))
        before = column.device.snapshot()
        column.range_query(0, 300)
        io = column.device.stats_since(before)
        assert io.write_bytes > 0  # the merge happens inside the read

    def test_mutations_after_partial_merge(self):
        column = merging()
        column.bulk_load(sample_records(200))
        column.range_query(0, 100)
        column.insert(9999, 1)
        column.update(10, 111)
        column.delete(12)
        assert column.get(9999) == 1
        assert column.get(10) == 111
        assert column.get(12) is None
