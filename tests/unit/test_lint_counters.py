"""The counter-mutation lint holds over the tree and catches offenders."""

from __future__ import annotations

import os
import sys
import textwrap

LINT_TOOLS_PATH = os.path.join(os.path.dirname(__file__), "..", "..", "tools")
SRC_PATH = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def _lint_counters():
    sys.path.insert(0, LINT_TOOLS_PATH)
    try:
        import lint_counters
    finally:
        sys.path.remove(LINT_TOOLS_PATH)
    return lint_counters


def test_no_counter_mutations_outside_storage():
    lint_counters = _lint_counters()
    violations = lint_counters.check_tree(SRC_PATH)
    assert violations == [], (
        "DeviceCounters mutated outside repro/storage:\n"
        + "\n".join(f"{path}:{line}: {target}" for path, line, target in violations)
    )


def test_lint_flags_attribute_mutation():
    lint_counters = _lint_counters()
    bad = textwrap.dedent(
        """
        def sneaky(device):
            device.counters.reads += 1
            device.counters.simulated_time = 0.0
        """
    )
    violations = lint_counters.violations_in_source(bad, "bad.py")
    assert len(violations) == 2
    assert violations[0][2] == "device.counters.reads"


def test_lint_flags_bare_counters_variable():
    lint_counters = _lint_counters()
    bad = "counters.writes = 5\n"
    assert len(lint_counters.violations_in_source(bad, "bad.py")) == 1


def test_lint_flags_private_device_attribute_access():
    lint_counters = _lint_counters()
    bad = textwrap.dedent(
        """
        def sneaky(method, backing):
            table = method.device._blocks          # read access
            method.device._used_total = 0          # write access
            return table, backing._seq_reads
        """
    )
    violations = lint_counters.violations_in_source(bad, "bad.py")
    targets = {target for _, _, target in violations}
    assert "method.device._blocks" in targets
    assert "method.device._used_total" in targets
    assert "backing._seq_reads" in targets


def test_lint_allows_private_attrs_on_non_device_owners():
    lint_counters = _lint_counters()
    fine = textwrap.dedent(
        """
        def fine(self, pool):
            self._blocks = []        # a method's own attribute, not a device's
            return pool._next_id     # not a device-ish owner name
        """
    )
    assert lint_counters.violations_in_source(fine, "fine.py") == []


def test_lint_ignores_reads_and_other_attributes():
    lint_counters = _lint_counters()
    fine = textwrap.dedent(
        """
        def fine(device, pool):
            total = device.counters.reads + device.counters.writes
            pool.stats.hits += 1  # PoolStats is not DeviceCounters
            reads = 4
            return total, reads
        """
    )
    assert lint_counters.violations_in_source(fine, "fine.py") == []


def test_lint_flags_frame_table_access_anywhere():
    lint_counters = _lint_counters()
    bad = textwrap.dedent(
        """
        def sneaky(pool, level):
            frame = pool._frames.get(7)            # read access
            level.pool._frames[7] = frame          # write access
            return frame
        """
    )
    violations = lint_counters.violations_in_source(bad, "bad.py")
    targets = {target for _, _, target in violations}
    assert "pool._frames" in targets
    assert "level.pool._frames" in targets


def test_lint_frames_rule_applies_inside_storage_modules():
    lint_counters = _lint_counters()
    bad = "def sneaky(pool):\n    return pool._frames\n"
    violations = lint_counters.violations_in_source(
        bad, "hierarchy.py", frames_only=True
    )
    assert len(violations) == 1
    # frames_only skips the device/counter rules entirely.
    also_device = "def ok(device):\n    device.counters.reads += 1\n"
    assert lint_counters.violations_in_source(
        also_device, "storage_mod.py", frames_only=True
    ) == []


def test_lint_flags_direct_tracer_emit_when_enabled():
    lint_counters = _lint_counters()
    bad = textwrap.dedent(
        """
        def sneaky(self, tracer):
            tracer.emit(source="x", op="read", block_id=1)
            self.tracer.emit(source="x", op="write", block_id=2)
            self._tracer.emit(source="x", op="alloc", block_id=3)
        """
    )
    violations = lint_counters.violations_in_source(
        bad, "bad.py", check_emit=True
    )
    targets = {target for _, _, target in violations}
    assert targets == {
        "tracer.emit", "self.tracer.emit", "self._tracer.emit"
    }
    # The same source is clean for modules allowed to emit directly
    # (repro/obs, repro/storage), where check_emit stays off.
    assert lint_counters.violations_in_source(bad, "device.py") == []


def test_lint_emit_rule_ignores_non_tracer_emitters():
    lint_counters = _lint_counters()
    fine = textwrap.dedent(
        """
        def fine(self, sink, event):
            sink.emit(event)                 # sinks receive, tracers emit
            self.sink.emit(event)
            emit_audit_events(self.tracer, "m", ["violation"])  # sanctioned
        """
    )
    assert lint_counters.violations_in_source(
        fine, "fine.py", check_emit=True
    ) == []


def test_lint_tree_skips_pager_itself():
    lint_counters = _lint_counters()
    violations = lint_counters.check_tree(SRC_PATH)
    assert violations == [], (
        "frame table reached outside pager.py:\n"
        + "\n".join(f"{path}:{line}: {target}" for path, line, target in violations)
    )


def test_lint_flags_per_op_bookkeeping_in_batched_loops():
    lint_counters = _lint_counters()
    bad = textwrap.dedent(
        """
        def get_many(self, keys):
            out = []
            for key in keys:
                before = self.device.snapshot()      # per-op snapshot
                out.append(self.get(key))
                self.device.stats_since(before)      # per-op delta
            return out

        def apply_batch(self, operations):
            while operations:
                operations.pop()
                total = self.device.counters          # derived property
            return total
        """
    )
    violations = lint_counters.violations_in_source(bad, "bad.py")
    targets = [target for _path, _line, target in violations]
    assert targets == [
        "batch-loop self.device.snapshot",
        "batch-loop self.device.stats_since",
        "batch-loop self.device.counters",
    ]


def test_lint_batch_rule_ignores_hoisted_and_per_op_functions():
    lint_counters = _lint_counters()
    fine = textwrap.dedent(
        """
        def get_many(self, keys):
            before = self.device.snapshot()          # hoisted: per batch
            out = [self.get(key) for key in keys]
            self.device.stats_since(before)
            return out

        def measure(self, operations):
            for operation in operations:             # not a batched entry
                before = self.device.snapshot()
                self.run(operation)
                self.device.stats_since(before)
        """
    )
    assert lint_counters.violations_in_source(fine, "fine.py") == []


def test_lint_flags_direct_device_writes_in_serve_modules():
    lint_counters = _lint_counters()
    bad = textwrap.dedent(
        """
        class Server:
            def apply(self, payload):
                block = self.device.allocate("data")
                self.device.write(block, payload, used_bytes=8)
                self.device.free(block)
                device = self.device
                device.write_many([block], [payload], [8])
        """
    )
    violations = lint_counters.violations_in_source(
        bad, "server.py", check_serve_writes=True
    )
    assert len(violations) == 4
    assert all(target.startswith("serve-write ") for _, _, target in violations)


def test_lint_serve_rule_allows_reads_and_method_calls():
    lint_counters = _lint_counters()
    fine = textwrap.dedent(
        """
        class Server:
            def read(self, txn, key):
                self.device.read(7)
                self.device.kind_of(7)
                self.method.insert(key, 1)   # method owns its writes
                self.wal.append(1, "put", key)
                other.write(3, "x")          # not a device owner
        """
    )
    assert lint_counters.violations_in_source(
        fine, "server.py", check_serve_writes=True
    ) == []


def test_lint_serve_rule_off_by_default():
    lint_counters = _lint_counters()
    source = "def f(device):\n    device.write(1, 'x')\n"
    assert lint_counters.violations_in_source(source, "wal.py") == []


def test_lint_tree_applies_serve_rule_outside_wal_only():
    """The tree walk enables the serve rule for repro/serve modules
    except wal.py — pinned by linting the real tree (no violations) and
    by a synthetic layout check on the flag computation."""
    lint_counters = _lint_counters()
    violations = [
        v
        for v in lint_counters.check_tree(SRC_PATH)
        if v[2].startswith("serve-write ")
    ]
    assert violations == []


def test_lint_serve_rule_covers_store_and_hierarchy_owners():
    # The serve tier mounts methods on BlockStore seams (``store``,
    # ``hierarchy`` owners), and mutating those directly bypasses the
    # same bookkeeping as a raw device write.
    lint_counters = _lint_counters()
    bad = textwrap.dedent(
        """
        class Server:
            def sneak(self, payload):
                self.store.write(1, payload, used_bytes=8)
                self.hierarchy.write(2, payload, 8)
                block = self.store.allocate("data")
        """
    )
    violations = lint_counters.violations_in_source(
        bad, "server.py", check_serve_writes=True
    )
    assert len(violations) == 3
    assert all(target.startswith("serve-write ") for _, _, target in violations)


def test_lint_wal_rule_forbids_raw_device_writes():
    # wal.py's sanctioned surface is its LogStore seam (``self.store``);
    # going around it to a bare device or the hierarchy's backing would
    # dodge the cache levels the modeled fsync must flow through.
    lint_counters = _lint_counters()
    bad = textwrap.dedent(
        """
        class WriteAheadLog:
            def sync(self):
                block = self.device.allocate("wal")
                self.device.write(block, [], used_bytes=0)
                self.backing.write(block, [], used_bytes=0)
        """
    )
    violations = lint_counters.violations_in_source(
        bad, "wal.py", check_serve_wal=True
    )
    assert len(violations) == 3
    assert all(
        target.startswith("wal-raw-write ") for _, _, target in violations
    )


def test_lint_wal_rule_allows_the_store_seam():
    lint_counters = _lint_counters()
    fine = textwrap.dedent(
        """
        class WriteAheadLog:
            def sync(self):
                block = self.store.allocate("wal")
                self.store.write(block, [], used_bytes=0)
                self.store.sync_through((block,))
                self.store.free(block)
        """
    )
    assert lint_counters.violations_in_source(
        fine, "wal.py", check_serve_wal=True
    ) == []


def test_lint_flags_live_registry_mutation_when_enabled():
    lint_counters = _lint_counters()
    bad = textwrap.dedent(
        """
        def sneaky(self, live, registry, io):
            live.count("txn-begin", now=0.0)
            self.live.observe("latency", 3.0, now=0.0)
            registry.gauge("depth", 4, now=0.0)
            self.windowed.observe_op("insert", False, io, 1, 0.0)
        """
    )
    violations = lint_counters.violations_in_source(
        bad, "bad.py", check_live=True
    )
    assert len(violations) == 4
    assert all(
        target.startswith("live-mutate ") for _, _, target in violations
    )


def test_lint_live_rule_allows_reads_and_non_live_owners():
    lint_counters = _lint_counters()
    fine = textwrap.dedent(
        """
        def fine(self, live, metrics):
            frames = live.snapshot()         # reads stay fine anywhere
            totals = live.totals()
            metrics.observe("x", 1)          # not a live-ish owner
            return frames, totals
        """
    )
    assert lint_counters.violations_in_source(
        fine, "fine.py", check_live=True
    ) == []


def test_lint_live_rule_off_by_default():
    # Sanctioned modules (repro/obs, the rum/runner/serve taps) are
    # linted with check_live off, mirroring the tree walk.
    lint_counters = _lint_counters()
    source = "def f(live):\n    live.count('x', now=0.0)\n"
    assert lint_counters.violations_in_source(source, "live.py") == []


def test_lint_tree_applies_live_rule_outside_sanctioned_taps():
    lint_counters = _lint_counters()
    violations = [
        v
        for v in lint_counters.check_tree(SRC_PATH)
        if v[2].startswith("live-mutate ")
    ]
    assert violations == []


def test_lint_tree_applies_wal_rule_to_wal_module():
    lint_counters = _lint_counters()
    violations = [
        v
        for v in lint_counters.check_tree(SRC_PATH)
        if v[2].startswith("wal-raw-write ")
    ]
    assert violations == []
