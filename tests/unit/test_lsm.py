"""Structure-specific tests for the LSM tree."""

from __future__ import annotations

import pytest

from repro.methods.lsm import LSMTree
from repro.storage.device import SimulatedDevice

from tests.conftest import SMALL_BLOCK, sample_records


def small_lsm(**kwargs):
    defaults = dict(memtable_records=16, size_ratio=3)
    defaults.update(kwargs)
    return LSMTree(SimulatedDevice(block_bytes=SMALL_BLOCK), **defaults)


class TestMemtableAndFlush:
    def test_writes_buffered_in_memtable(self):
        lsm = small_lsm()
        lsm.bulk_load(sample_records(64))
        before = lsm.device.snapshot()
        lsm.insert(10_001, 1)  # well under memtable capacity
        io = lsm.device.stats_since(before)
        assert io.write_bytes == 0

    def test_memtable_spills_at_capacity(self):
        lsm = small_lsm(memtable_records=8)
        lsm.bulk_load(sample_records(64))
        before = lsm.device.snapshot()
        for i in range(8):
            lsm.insert(10_000 + 2 * i, i)
        io = lsm.device.stats_since(before)
        assert io.write_bytes > 0  # the 8th insert triggered the flush

    def test_flush_forces_spill(self):
        lsm = small_lsm()
        lsm.insert(1, 10)
        lsm.flush()
        before = lsm.device.snapshot()
        assert lsm.get(1) == 10
        assert lsm.device.stats_since(before).reads > 0  # served from a run

    def test_reads_see_memtable_first(self):
        lsm = small_lsm()
        lsm.bulk_load(sample_records(64))
        lsm.update(10, 777)
        before = lsm.device.snapshot()
        assert lsm.get(10) == 777
        # Memtable hit: no device reads at all.
        assert lsm.device.stats_since(before).reads == 0


class TestCompaction:
    def test_levels_grow_with_data(self):
        lsm = small_lsm(memtable_records=8, size_ratio=2)
        for i in range(400):
            lsm.insert(i, i)
        assert lsm.levels >= 2

    def test_leveled_keeps_one_run_per_level(self):
        lsm = small_lsm(memtable_records=8, size_ratio=2, compaction="leveled")
        for i in range(300):
            lsm.insert(i, i)
        assert all(count <= 1 for count in lsm.runs_per_level())

    def test_tiered_allows_multiple_runs(self):
        lsm = small_lsm(memtable_records=8, size_ratio=4, compaction="tiered")
        for i in range(200):
            lsm.insert(i, i)
        assert max(lsm.runs_per_level()) >= 2

    def test_tiered_writes_less_than_leveled(self):
        # Blooms off and enough data that run-metadata overhead (one
        # fence block per tiny run) does not mask the compaction effect.
        workload = [(i, i) for i in range(3000)]
        totals = {}
        for compaction in ("leveled", "tiered"):
            lsm = small_lsm(
                memtable_records=32,
                size_ratio=4,
                compaction=compaction,
                bloom_bits_per_key=0,
            )
            for key, value in workload:
                lsm.insert(key, value)
            totals[compaction] = lsm.device.counters.write_bytes
        assert totals["tiered"] < totals["leveled"]

    def test_correct_after_many_compactions(self):
        lsm = small_lsm(memtable_records=8, size_ratio=2)
        oracle = {}
        for i in range(500):
            lsm.insert(i, i * 3)
            oracle[i] = i * 3
        for i in range(0, 500, 7):
            lsm.update(i, i)
            oracle[i] = i
        for i in range(0, 500, 13):
            lsm.delete(i)
            del oracle[i]
        for key in range(500):
            assert lsm.get(key) == oracle.get(key)

    def test_invalid_compaction_mode(self):
        with pytest.raises(ValueError):
            small_lsm(compaction="weird")

    def test_size_ratio_validation(self):
        with pytest.raises(ValueError):
            small_lsm(size_ratio=1)


class TestBloomFilters:
    def test_bloom_reduces_negative_lookup_reads(self):
        reads = {}
        for bits in (0, 10):
            lsm = small_lsm(memtable_records=8, bloom_bits_per_key=bits)
            for i in range(300):
                lsm.insert(2 * i, i)
            lsm.device.reset_counters()
            for probe in range(1, 400, 2):  # guaranteed misses
                lsm.get(probe)
            reads[bits] = lsm.device.counters.reads
        assert reads[10] < reads[0]

    def test_bloom_costs_space(self):
        spaces = {}
        for bits in (0, 10):
            lsm = small_lsm(memtable_records=8, bloom_bits_per_key=bits)
            for i in range(300):
                lsm.insert(2 * i, i)
            lsm.flush()
            spaces[bits] = lsm.space_bytes()
        assert spaces[10] > spaces[0]
        assert small_lsm(bloom_bits_per_key=0).bloom_space_bytes() == 0

    def test_no_false_negatives_through_filters(self):
        lsm = small_lsm(memtable_records=8, bloom_bits_per_key=6)
        records = sample_records(300)
        for key, value in records:
            lsm.insert(key, value)
        for key, value in records:
            assert lsm.get(key) == value


class TestTombstones:
    def test_delete_then_range(self):
        lsm = small_lsm(memtable_records=4)
        lsm.bulk_load(sample_records(40))
        lsm.delete(10)
        lsm.delete(20)
        result = dict(lsm.range_query(0, 100))
        assert 10 not in result and 20 not in result

    def test_tombstones_dropped_at_bottom(self):
        lsm = small_lsm(memtable_records=4, size_ratio=2)
        for i in range(50):
            lsm.insert(i, i)
        for i in range(50):
            lsm.delete(i)
        # Force everything down through compactions.
        for i in range(1000, 1200):
            lsm.insert(i, i)
        assert lsm.get(5) is None
        assert len(lsm) == 200

    def test_update_shadows_older_versions(self):
        lsm = small_lsm(memtable_records=4)
        lsm.bulk_load(sample_records(40))
        for _ in range(5):
            lsm.update(10, 1)
        lsm.update(10, 999)
        assert lsm.get(10) == 999
