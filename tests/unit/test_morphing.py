"""Structure-specific tests for the morphing access method (Section 5)."""

from __future__ import annotations

import pytest

from repro.methods.morphing import SHAPES, MorphingMethod
from repro.storage.device import SimulatedDevice

from tests.conftest import SMALL_BLOCK, sample_records


def make(**kwargs):
    defaults = dict(window=50)
    defaults.update(kwargs)
    return MorphingMethod(SimulatedDevice(block_bytes=SMALL_BLOCK), **defaults)


class TestShapeTransitions:
    def test_starts_in_initial_shape(self):
        assert make(initial_shape="sorted").shape == "sorted"

    def test_reads_escalate_toward_indexed(self):
        method = make(initial_shape="log", window=40)
        method.bulk_load(sample_records(200))
        for i in range(90):
            method.get(2 * (i % 200))
        assert method.shape in ("sorted", "indexed")
        for i in range(90):
            method.get(2 * (i % 200))
        assert method.shape == "indexed"
        assert method.morph_history == ["log", "sorted", "indexed"]

    def test_writes_deescalate_toward_log(self):
        method = make(initial_shape="indexed", window=40)
        method.bulk_load(sample_records(200))
        for i in range(90):
            method.update(2 * (i % 200), i)
        assert method.shape in ("sorted", "log")

    def test_balanced_traffic_holds_shape(self):
        method = make(initial_shape="sorted", window=40)
        method.bulk_load(sample_records(200))
        for i in range(120):
            if i % 2:
                method.get(2 * (i % 200))
            else:
                method.update(2 * (i % 200), i)
        assert method.shape == "sorted"
        assert method.morph_history == ["sorted"]

    def test_explicit_morph(self):
        method = make(initial_shape="log")
        records = sample_records(100)
        method.bulk_load(records)
        method.morph_to("indexed")
        assert method.shape == "indexed"
        assert method.range_query(-1, 10**9) == sorted(records)

    def test_morph_to_same_shape_is_noop(self):
        method = make(initial_shape="log")
        method.bulk_load(sample_records(10))
        writes = method.device.counters.writes
        method.morph_to("log")
        assert method.device.counters.writes == writes

    def test_unknown_shape_rejected(self):
        method = make()
        with pytest.raises(ValueError):
            method.morph_to("pyramid")
        with pytest.raises(ValueError):
            make(initial_shape="pyramid")


class TestCorrectnessAcrossMorphs:
    def test_contents_survive_every_transition(self):
        method = make(initial_shape="log")
        records = sample_records(150)
        method.bulk_load(records)
        oracle = dict(records)
        for shape in ("sorted", "indexed", "sorted", "log", "indexed"):
            method.morph_to(shape)
            assert len(method) == len(oracle)
            assert method.range_query(-1, 10**9) == sorted(oracle.items())
            # Mutate a little in each shape.
            key = 2 * (SHAPES.index(shape) + 1)
            method.update(key, 999 + SHAPES.index(shape))
            oracle[key] = 999 + SHAPES.index(shape)

    def test_morph_frees_old_blocks(self):
        method = make(initial_shape="indexed")
        method.bulk_load(sample_records(300))
        indexed_blocks = method.device.allocated_blocks
        method.morph_to("sorted")
        # The sorted column is denser than the tree (no internal nodes).
        assert method.device.allocated_blocks < indexed_blocks

    def test_reads_cheaper_after_escalation(self):
        method = make(initial_shape="log")
        method.bulk_load(sample_records(400))

        def probe_cost():
            before = method.device.snapshot()
            # Probe tail keys: the heap stores in arrival order, so these
            # sit at the end and force near-full scans in log shape.
            for key in range(700, 798, 10):
                method.get(key)
            return method.device.stats_since(before).read_bytes

        cost_as_log = probe_cost()
        method.morph_to("indexed")
        assert probe_cost() < cost_as_log / 3

    def test_morph_cost_is_charged(self):
        method = make(initial_shape="log")
        method.bulk_load(sample_records(300))
        before = method.device.snapshot()
        method.morph_to("indexed")
        io = method.device.stats_since(before)
        assert io.reads > 0 and io.writes > 0  # reorganization is real I/O


class TestValidation:
    def test_window_validation(self):
        with pytest.raises(ValueError):
            make(window=0)

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            make(read_threshold=0.4)
