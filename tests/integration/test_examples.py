"""Integration tests: every example script runs and says what it should."""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "examples")

#: (script, substrings its output must contain)
EXAMPLES = [
    ("quickstart.py", ["RO=", "UO=", "MO=", "RUM Conjecture"]),
    ("rum_explorer.py", ["read-optimized", "btree", "lsm"]),
    ("wizard_demo.py", ["wizard picks", "rank"]),
    ("adaptive_shift.py", ["read knob", "write knob", "Knob trajectory"]),
    ("hierarchy_tour.py", ["hit rate", "flash reads"]),
    ("bitmap_analytics.py", ["bitmap bytes", "WAH"]),
    ("log_structured_showcase.py", ["Bloom filters", "Morph history"]),
    ("heap_vs_index.py", ["bare heap", "MO"]),
]


@pytest.mark.parametrize("script,expected", EXAMPLES, ids=[e[0] for e in EXAMPLES])
def test_example_runs(script, expected):
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    for needle in expected:
        assert needle in result.stdout, f"{script}: missing {needle!r}"


def test_rum_explorer_accepts_workload_argument():
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, "rum_explorer.py"), "write-heavy"],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert "write-heavy" in result.stdout


def test_rum_explorer_rejects_unknown_workload():
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, "rum_explorer.py"), "bogus"],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert result.returncode != 0
