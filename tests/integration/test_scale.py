"""Non-toy scale sanity: the core structures at tens of thousands of keys.

Not a micro-benchmark — a smoke check that nothing degenerates (no
quadratic blowups, no recursion limits, no counter overflow weirdness)
when the dataset is 25x the sizes the rest of the suite uses.
"""

from __future__ import annotations

import random

import pytest

from repro.core.registry import create_method
from repro.storage.device import SimulatedDevice

N = 50_000

#: Structures whose operations are all sub-linear — the ones that must
#: stay fast at scale (linear-cost structures would time the suite out
#: by design, not by bug).
SCALABLE = ["btree", "lsm", "hash-index", "silt", "cache-oblivious", "pdt"]


@pytest.mark.parametrize("name", SCALABLE)
def test_fifty_thousand_keys(name):
    method = create_method(name, device=SimulatedDevice(block_bytes=4096))
    records = [(2 * i, i) for i in range(N)]
    method.bulk_load(records)
    assert len(method) == N

    rng = random.Random(13)
    for _ in range(200):
        key = 2 * rng.randrange(N)
        assert method.get(key) == key // 2
    for probe in range(200):
        assert method.get(2 * N + 2 * probe + 100_001) is None

    # A band of mutations in the middle of the key space.
    for i in range(200):
        method.update(2 * (N // 2 + i), 0)
        method.insert(2 * N + 2 * i + 1, i)
    for i in range(0, 200, 2):
        method.delete(2 * (N // 2 + i))
    method.flush()

    assert method.get(2 * (N // 2 + 1)) == 0
    assert method.get(2 * (N // 2)) is None
    assert method.get(2 * N + 1) == 0

    result = method.range_query(2 * (N // 2 - 2), 2 * (N // 2 + 3))
    keys = [key for key, _ in result]
    assert 2 * (N // 2) not in keys
    assert 2 * (N // 2 + 1) in keys


def test_point_cost_stays_logarithmic_at_scale():
    costs = {}
    for n in (5_000, 50_000):
        tree = create_method("btree", device=SimulatedDevice(block_bytes=4096))
        tree.bulk_load([(2 * i, i) for i in range(n)])
        rng = random.Random(17)
        before = tree.device.snapshot()
        for _ in range(100):
            tree.get(2 * rng.randrange(n))
        costs[n] = tree.device.stats_since(before).reads
    # 10x data, far less than 2x the probe cost.
    assert costs[50_000] <= costs[5_000] * 2
