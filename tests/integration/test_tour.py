"""Execute every code block in docs/TOUR.md — docs that cannot rot."""

from __future__ import annotations

import os
import re

import pytest

TOUR_PATH = os.path.join(
    os.path.dirname(__file__), "..", "..", "docs", "TOUR.md"
)


def _code_blocks():
    with open(TOUR_PATH) as handle:
        text = handle.read()
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


def test_tour_has_blocks():
    assert len(_code_blocks()) >= 6


def test_tour_blocks_execute_in_order():
    namespace: dict = {}
    for index, block in enumerate(_code_blocks()):
        try:
            exec(compile(block, f"TOUR.md block {index + 1}", "exec"), namespace)
        except Exception as error:  # pragma: no cover - failure reporting
            pytest.fail(f"TOUR.md block {index + 1} failed: {error!r}\n{block}")
