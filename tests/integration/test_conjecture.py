"""Integration test of the RUM Conjecture itself (paper Section 3).

"An access method that can set an upper bound for two out of the read,
update, and memory overheads, also sets a lower bound for the third
overhead."

Empirically: across every implemented structure and a grid of tunings,
no configuration achieves *near-optimal values on all three overheads
simultaneously*.  We verify (a) no structure Pareto-dominates with all
three overheads close to their floors, and (b) for each structure that
excels on two dimensions, its third is far from optimal.
"""

from __future__ import annotations

import pytest

from repro.core.registry import available_methods, create_method
from repro.storage.device import SimulatedDevice
from repro.workloads.runner import run_workload
from repro.workloads.spec import WorkloadSpec

from tests.conftest import SMALL_BLOCK
from tests.unit.test_method_contract import TUNED_KWARGS

SPEC = WorkloadSpec(
    point_queries=0.35,
    range_queries=0.05,
    inserts=0.3,
    updates=0.2,
    deletes=0.1,
    operations=400,
    initial_records=2000,
)

#: "Close to optimal" thresholds.  RO's floor under block granularity is
#: block/record = 16 for point queries; we call a structure read-near-
#: optimal within 4x of that floor.  UO's floor is 1.0 (log-style
#: appends); MO's floor is 1.0.
RO_FLOOR = 16.0  # SMALL_BLOCK / RECORD_BYTES
NEAR = {
    "read": lambda ro: ro <= 4 * RO_FLOOR,
    "update": lambda uo: uo <= 4.0,
    "memory": lambda mo: mo <= 1.10,
}


def measure_all():
    profiles = {}
    for name in sorted(available_methods()):
        method = create_method(
            name,
            device=SimulatedDevice(block_bytes=SMALL_BLOCK),
            **TUNED_KWARGS.get(name, {}),
        )
        profiles[name] = run_workload(method, SPEC).profile
    return profiles


@pytest.fixture(scope="module")
def profiles():
    return measure_all()


class TestConjecture:
    def test_no_structure_is_near_optimal_on_all_three(self, profiles):
        violators = []
        for name, profile in profiles.items():
            if (
                NEAR["read"](profile.read_overhead)
                and NEAR["update"](profile.update_overhead)
                and NEAR["memory"](profile.memory_overhead)
            ):
                violators.append((name, profile))
        assert not violators, f"RUM Conjecture violated by: {violators}"

    def test_each_corner_is_reachable(self, profiles):
        """The frontier is populated: for each single overhead, some
        structure gets near its floor (so the conjecture's content is
        about the *combination*, not any single axis being hard)."""
        assert any(NEAR["read"](p.read_overhead) for p in profiles.values())
        assert any(NEAR["update"](p.update_overhead) for p in profiles.values())
        assert any(NEAR["memory"](p.memory_overhead) for p in profiles.values())

    def test_two_of_three_forces_the_third_up(self, profiles):
        """Every structure near-optimal on two axes is clearly away from
        the floor on the third."""
        for name, profile in profiles.items():
            flags = {
                "read": NEAR["read"](profile.read_overhead),
                "update": NEAR["update"](profile.update_overhead),
                "memory": NEAR["memory"](profile.memory_overhead),
            }
            if sum(flags.values()) == 2:
                if not flags["read"]:
                    assert profile.read_overhead > 4 * RO_FLOOR, name
                elif not flags["update"]:
                    assert profile.update_overhead > 4.0, name
                else:
                    assert profile.memory_overhead > 1.10, name

    def test_no_profile_dominates_every_other(self, profiles):
        """No universally best access method (the paper's core claim)."""
        names = sorted(profiles)
        for name in names:
            dominated_all = all(
                other == name or profiles[name].dominates(profiles[other])
                for other in names
            )
            assert not dominated_all, f"{name} dominates everything"


class TestTunableSweepsStayOnFrontier:
    def test_tunable_knob_grid_respects_conjecture(self):
        """No knob setting of the tunable method beats the conjecture."""
        for r in (0.0, 0.5, 1.0):
            for w in (0.0, 0.5, 1.0):
                method = create_method(
                    "tunable",
                    device=SimulatedDevice(block_bytes=SMALL_BLOCK),
                    read_optimization=r,
                    write_optimization=w,
                )
                profile = run_workload(method, SPEC).profile
                near_all = (
                    NEAR["read"](profile.read_overhead)
                    and NEAR["update"](profile.update_overhead)
                    and NEAR["memory"](profile.memory_overhead)
                )
                assert not near_all, f"knobs ({r}, {w}) violate the conjecture"
