"""Integration tests: workload runner end-to-end across methods."""

from __future__ import annotations

import pytest

from repro.core.registry import available_methods, create_method
from repro.storage.device import SimulatedDevice
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.runner import run_workload
from repro.workloads.spec import MIXES, WorkloadSpec

from tests.conftest import SMALL_BLOCK
from tests.unit.test_method_contract import TUNED_KWARGS


def build(name):
    return create_method(
        name, device=SimulatedDevice(block_bytes=SMALL_BLOCK), **TUNED_KWARGS.get(name, {})
    )


SPEC = WorkloadSpec(
    point_queries=0.35,
    range_queries=0.05,
    inserts=0.3,
    updates=0.2,
    deletes=0.1,
    operations=300,
    initial_records=1000,
)


class TestRunWorkload:
    @pytest.mark.parametrize("name", sorted(available_methods()))
    def test_every_method_completes_the_balanced_mix(self, name):
        result = run_workload(build(name), SPEC)
        assert result.method_name == name
        assert result.final_records > 0
        assert result.profile.read_overhead >= 1.0
        assert result.profile.memory_overhead > 0

    def test_identical_streams_for_identical_specs(self):
        result_a = run_workload(build("btree"), SPEC)
        result_b = run_workload(build("btree"), SPEC)
        assert result_a.profile == result_b.profile

    def test_bulk_load_io_reported(self):
        result = run_workload(build("sorted-column"), SPEC)
        assert result.bulk_load_io.writes > 0

    def test_shared_generator_replays_same_stream(self):
        # Two methods driven by generators with the same spec see the
        # same operations and end with the same logical contents.
        results = {}
        for name in ("btree", "lsm"):
            method = build(name)
            run_workload(method, SPEC)
            results[name] = method.range_query(-1, 10**12)
        assert results["btree"] == results["lsm"]

    @pytest.mark.parametrize("mix", sorted(MIXES))
    def test_all_named_mixes_run(self, mix):
        spec = MIXES[mix].scaled(initial_records=500, operations=150)
        result = run_workload(build("btree"), spec)
        assert result.spec.operations == 150


class TestCrossMethodConsistency:
    """All structures given the same stream must converge to the same
    logical database state — the deepest end-to-end correctness check."""

    def test_final_states_identical(self):
        final_states = {}
        for name in sorted(available_methods()):
            method = build(name)
            run_workload(method, SPEC)
            final_states[name] = method.range_query(-1, 10**12)
        reference = final_states["btree"]
        assert len(reference) > 0
        for name, state in final_states.items():
            assert state == reference, f"{name} diverged from btree"
