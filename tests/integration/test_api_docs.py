"""The committed API reference must match the code it documents."""

from __future__ import annotations

import os
import sys

API_PATH = os.path.join(os.path.dirname(__file__), "..", "..", "docs", "API.md")
TOOLS_PATH = os.path.join(os.path.dirname(__file__), "..", "..", "tools")


def test_api_reference_is_current():
    sys.path.insert(0, TOOLS_PATH)
    try:
        import gen_api_docs
    finally:
        sys.path.remove(TOOLS_PATH)
    with open(API_PATH) as handle:
        committed = handle.read()
    assert committed == gen_api_docs.render(), (
        "docs/API.md is stale; regenerate with `python tools/gen_api_docs.py`"
    )
