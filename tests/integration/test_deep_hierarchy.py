"""Three-level hierarchy: the Figure-2 interaction per level pair.

A cache over a DRAM layer over a flash backing device: traffic that
misses level n is served at n+1; the paper's vertical tradeoff must
hold between *each* adjacent pair, not just the top two.
"""

from __future__ import annotations

import random

import pytest

from repro.storage.device import SimulatedDevice
from repro.storage.hierarchy import LevelSpec, MemoryHierarchy


def _seed(device, n):
    blocks = []
    for i in range(n):
        block = device.allocate()
        device.write(block, f"page-{i}")
        blocks.append(block)
    return blocks


def _skewed_pattern(n_blocks, accesses, seed=5):
    rng = random.Random(seed)
    return [
        min(int(rng.expovariate(1.0 / (n_blocks / 8))), n_blocks - 1)
        for _ in range(accesses)
    ]


class TestThreeLevels:
    def test_traffic_decays_down_the_stack(self):
        backing = SimulatedDevice(block_bytes=64, name="flash")
        blocks = _seed(backing, 128)
        hierarchy = MemoryHierarchy(
            backing,
            [LevelSpec("cache", 8), LevelSpec("dram", 32)],
        )
        backing.reset_counters()
        for index in _skewed_pattern(128, 4000):
            hierarchy.read(blocks[index])
        cache = hierarchy.level("cache").counters
        dram = hierarchy.level("dram").counters
        # Each level absorbs traffic; what reaches the next is smaller.
        assert dram.reads_reaching == cache.reads_passed_down
        assert backing.counters.reads == dram.reads_passed_down
        assert cache.reads_served > 0
        assert dram.reads_served > 0
        assert backing.counters.reads < dram.reads_reaching < cache.reads_reaching

    def test_growing_the_middle_level_relieves_the_bottom(self):
        results = {}
        for dram_capacity in (8, 64):
            backing = SimulatedDevice(block_bytes=64, name="flash")
            blocks = _seed(backing, 128)
            hierarchy = MemoryHierarchy(
                backing,
                [LevelSpec("cache", 4), LevelSpec("dram", dram_capacity)],
            )
            backing.reset_counters()
            for index in _skewed_pattern(128, 4000):
                hierarchy.read(blocks[index])
            results[dram_capacity] = (
                backing.counters.reads,
                hierarchy.level("dram").space_bytes,
            )
        small, large = results[8], results[64]
        assert large[0] < small[0]  # fewer reads reach flash
        assert large[1] > small[1]  # more bytes replicated at DRAM

    def test_space_by_level_reports_all_levels(self):
        backing = SimulatedDevice(block_bytes=64, name="flash")
        blocks = _seed(backing, 16)
        hierarchy = MemoryHierarchy(
            backing, [LevelSpec("cache", 2), LevelSpec("dram", 8)]
        )
        for block in blocks:
            hierarchy.read(block)
        rows = hierarchy.space_by_level()
        assert [name for name, _ in rows] == ["cache", "dram", "flash"]
        cache_bytes, dram_bytes, flash_bytes = (space for _, space in rows)
        assert cache_bytes <= dram_bytes <= flash_bytes

    def test_writes_flush_through_all_levels(self):
        backing = SimulatedDevice(block_bytes=64, name="flash")
        blocks = _seed(backing, 8)
        hierarchy = MemoryHierarchy(
            backing, [LevelSpec("cache", 4), LevelSpec("dram", 8)]
        )
        for index, block in enumerate(blocks):
            hierarchy.write(block, f"updated-{index}")
        hierarchy.flush()
        for index, block in enumerate(blocks):
            assert backing.peek(block) == f"updated-{index}"


class TestStaleReadRegression:
    """Pins the layering bug the chained stack fixes.

    The old hierarchy pointed every level's pool at the backing device,
    so a dirty eviction from level 0 bypassed level 1 — which kept a
    clean copy of the *old* payload and served it on a later read.
    In the chained design the eviction lands in level 1's pool, so the
    read below must observe the newest value.
    """

    def test_dirty_eviction_cannot_bypass_the_middle_level(self):
        backing = SimulatedDevice(block_bytes=64, name="flash")
        b0, b1 = _seed(backing, 2)
        hierarchy = MemoryHierarchy(
            backing, [LevelSpec("cache", 1), LevelSpec("dram", 8)]
        )
        hierarchy.read(b0)            # cache and dram both hold b0, clean
        hierarchy.write(b0, "newer")  # dirties only the cache frame
        hierarchy.read(b1)            # evicts b0 from the 1-frame cache
        # The dirty eviction must land in dram, not teleport to flash:
        # a dram hit on the next read has to serve the newest payload.
        assert hierarchy.read(b0) == "newer"
        assert hierarchy.level("dram").counters.reads_served >= 1
        assert hierarchy.audit() == []

    def test_flush_cascades_level_by_level(self):
        backing = SimulatedDevice(block_bytes=64, name="flash")
        (block,) = _seed(backing, 1)
        hierarchy = MemoryHierarchy(
            backing, [LevelSpec("cache", 2), LevelSpec("dram", 4)]
        )
        backing.reset_counters()
        hierarchy.write(block, "updated")
        hierarchy.flush()
        assert backing.peek(block) == "updated"
        # The write traveled cache -> dram -> flash: both levels passed
        # exactly one write down, and the backing device saw exactly one.
        assert hierarchy.level("cache").counters.writes_passed_down == 1
        assert hierarchy.level("dram").counters.writes_passed_down == 1
        assert hierarchy.backing_writes == 1
        assert backing.counters.writes == 1


class TestChainedConservation:
    def test_conservation_holds_through_a_mixed_workload(self):
        backing = SimulatedDevice(block_bytes=64, name="flash")
        blocks = _seed(backing, 128)
        hierarchy = MemoryHierarchy(
            backing,
            [LevelSpec("cache", 4), LevelSpec("dram", 16), LevelSpec("l3", 48)],
        )
        rng = random.Random(11)
        for index in _skewed_pattern(128, 3000):
            if rng.random() < 0.3:
                hierarchy.write(blocks[index], f"v-{index}")
            else:
                hierarchy.read(blocks[index])
        assert hierarchy.audit() == []
        cache, dram, l3 = (
            hierarchy.level(name).counters for name in ("cache", "dram", "l3")
        )
        assert cache.reads_passed_down == dram.reads_reaching
        assert dram.reads_passed_down == l3.reads_reaching
        assert l3.reads_passed_down == hierarchy.backing_reads
        assert cache.writes_passed_down == dram.writes_reaching
        assert dram.writes_passed_down == l3.writes_reaching
        assert l3.writes_passed_down == hierarchy.backing_writes
        hierarchy.flush()
        assert hierarchy.audit() == []

    def test_exclusive_middle_level_caches_only_victims(self):
        backing = SimulatedDevice(block_bytes=64, name="flash")
        blocks = _seed(backing, 64)
        hierarchy = MemoryHierarchy(
            backing,
            [
                LevelSpec("cache", 8),
                LevelSpec("dram", 32, inclusion="exclusive"),
            ],
        )
        for index in _skewed_pattern(64, 1500):
            hierarchy.read(blocks[index])
        dram = hierarchy.level("dram")
        # Every dram frame arrived as a victim pushed down from the
        # cache, never as a demand-read admission.
        assert dram.counters.victims_accepted > 0
        assert dram.pool.cached_blocks <= dram.counters.victims_accepted
        assert dram.counters.reads_served > 0  # victims do serve hits
        assert hierarchy.audit() == []
