"""Three-level hierarchy: the Figure-2 interaction per level pair.

A cache over a DRAM layer over a flash backing device: traffic that
misses level n is served at n+1; the paper's vertical tradeoff must
hold between *each* adjacent pair, not just the top two.
"""

from __future__ import annotations

import random

import pytest

from repro.storage.device import SimulatedDevice
from repro.storage.hierarchy import LevelSpec, MemoryHierarchy


def _seed(device, n):
    blocks = []
    for i in range(n):
        block = device.allocate()
        device.write(block, f"page-{i}")
        blocks.append(block)
    return blocks


def _skewed_pattern(n_blocks, accesses, seed=5):
    rng = random.Random(seed)
    return [
        min(int(rng.expovariate(1.0 / (n_blocks / 8))), n_blocks - 1)
        for _ in range(accesses)
    ]


class TestThreeLevels:
    def test_traffic_decays_down_the_stack(self):
        backing = SimulatedDevice(block_bytes=64, name="flash")
        blocks = _seed(backing, 128)
        hierarchy = MemoryHierarchy(
            backing,
            [LevelSpec("cache", 8), LevelSpec("dram", 32)],
        )
        backing.reset_counters()
        for index in _skewed_pattern(128, 4000):
            hierarchy.read(blocks[index])
        cache = hierarchy.level("cache").counters
        dram = hierarchy.level("dram").counters
        # Each level absorbs traffic; what reaches the next is smaller.
        assert dram.reads_reaching == cache.reads_passed_down
        assert backing.counters.reads == dram.reads_passed_down
        assert cache.reads_served > 0
        assert dram.reads_served > 0
        assert backing.counters.reads < dram.reads_reaching < cache.reads_reaching

    def test_growing_the_middle_level_relieves_the_bottom(self):
        results = {}
        for dram_capacity in (8, 64):
            backing = SimulatedDevice(block_bytes=64, name="flash")
            blocks = _seed(backing, 128)
            hierarchy = MemoryHierarchy(
                backing,
                [LevelSpec("cache", 4), LevelSpec("dram", dram_capacity)],
            )
            backing.reset_counters()
            for index in _skewed_pattern(128, 4000):
                hierarchy.read(blocks[index])
            results[dram_capacity] = (
                backing.counters.reads,
                hierarchy.level("dram").space_bytes,
            )
        small, large = results[8], results[64]
        assert large[0] < small[0]  # fewer reads reach flash
        assert large[1] > small[1]  # more bytes replicated at DRAM

    def test_space_by_level_reports_all_levels(self):
        backing = SimulatedDevice(block_bytes=64, name="flash")
        blocks = _seed(backing, 16)
        hierarchy = MemoryHierarchy(
            backing, [LevelSpec("cache", 2), LevelSpec("dram", 8)]
        )
        for block in blocks:
            hierarchy.read(block)
        rows = hierarchy.space_by_level()
        assert [name for name, _ in rows] == ["cache", "dram", "flash"]
        cache_bytes, dram_bytes, flash_bytes = (space for _, space in rows)
        assert cache_bytes <= dram_bytes <= flash_bytes

    def test_writes_flush_through_all_levels(self):
        backing = SimulatedDevice(block_bytes=64, name="flash")
        blocks = _seed(backing, 8)
        hierarchy = MemoryHierarchy(
            backing, [LevelSpec("cache", 4), LevelSpec("dram", 8)]
        )
        for index, block in enumerate(blocks):
            hierarchy.write(block, f"updated-{index}")
        hierarchy.flush()
        for index, block in enumerate(blocks):
            assert backing.peek(block) == f"updated-{index}"
