"""Block-size robustness: every structure works at every granularity.

The block size drives every capacity computation in the library (records
per block, fanout, fence density, filter chunking).  Running the oracle
sequence at a record-sized, a small and a production-sized block shakes
out arithmetic that only holds at one granularity.
"""

from __future__ import annotations

import random

import pytest

from repro.core.registry import available_methods, create_method
from repro.storage.device import SimulatedDevice

from tests.conftest import sample_records
from tests.unit.test_method_contract import TUNED_KWARGS

ALL_METHODS = sorted(available_methods())
BLOCK_SIZES = [64, 256, 4096]


@pytest.mark.parametrize("block_bytes", BLOCK_SIZES)
@pytest.mark.parametrize("name", ALL_METHODS)
def test_oracle_sequence_at_block_size(name, block_bytes):
    # Default constructors: knobs adapt to the block size (the tuned
    # kwargs elsewhere assume 256-byte blocks and may not fit 64-byte
    # ones — the B-tree now rejects such combinations at construction).
    method = create_method(name, device=SimulatedDevice(block_bytes=block_bytes))
    records = sample_records(90)
    method.bulk_load(records)
    oracle = dict(records)
    rng = random.Random(block_bytes)
    next_key = 2001
    for _ in range(120):
        action = rng.random()
        if action < 0.4:
            key = rng.choice(sorted(oracle)) if oracle else 0
            assert method.get(key) == oracle.get(key)
        elif action < 0.55:
            lo = rng.randrange(200)
            hi = lo + rng.randrange(30)
            expected = sorted((k, v) for k, v in oracle.items() if lo <= k <= hi)
            assert method.range_query(lo, hi) == expected
        elif action < 0.75:
            method.insert(next_key, next_key)
            oracle[next_key] = next_key
            next_key += 2
        elif action < 0.9 and oracle:
            key = rng.choice(sorted(oracle))
            oracle[key] += 7
            method.update(key, oracle[key])
        elif oracle:
            key = rng.choice(sorted(oracle))
            del oracle[key]
            method.delete(key)
    method.flush()
    assert len(method) == len(oracle)
    assert method.range_query(-1, 10**9) == sorted(oracle.items())


@pytest.mark.parametrize("name", ALL_METHODS)
def test_space_accounting_scales_with_block_size(name):
    """Bigger blocks may waste more slack, but accounting stays sane."""
    amplifications = {}
    for block_bytes in (256, 4096):
        method = create_method(
            name,
            device=SimulatedDevice(block_bytes=block_bytes),
            **TUNED_KWARGS.get(name, {}),
        )
        method.bulk_load(sample_records(200))
        method.flush()
        stats = method.stats()
        assert stats.space_amplification >= 1.0 - 1e-9
        amplifications[block_bytes] = stats.space_amplification
    # Record-granularity designs (one entry per block: the Prop logs,
    # per-value bitmaps over unique values) legitimately amplify by the
    # block/record ratio; everything else stays within a small factor.
    from repro.storage.layout import RECORD_BYTES

    for block_bytes, amplification in amplifications.items():
        ceiling = 1.5 * block_bytes / RECORD_BYTES + 4
        assert amplification <= ceiling, (block_bytes, amplification)
