"""Property tests: span profiles are execution-path invariant.

The span system's determinism contract (ISSUE 5): a
:class:`~repro.obs.spans.SpanProfile` is a pure function of the
workload, not of *how* the sweep that produced the event stream ran.
Under randomly drawn workload mixes and method grids:

* a serial sweep (``jobs=1``) and a parallel sweep (``jobs=N``) of the
  same grid produce **byte-identical** span profiles — every span path,
  every byte counter, every live-block tally;
* a warm cache hit replays the identical span tree: the profile built
  from cached envelopes equals the profile from the original execution.

Both follow from the engine's single execution path plus span stamping
inside the worker, but only property tests catch the ways it could rot
(per-process contextvar leakage, event reordering in the merge, a cache
envelope dropping span fields).
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exec import ResultCache, SweepCell, SweepEngine
from repro.obs.spans import SpanProfile
from repro.workloads.spec import WorkloadSpec

#: Methods cheap enough to sweep repeatedly under Hypothesis, chosen to
#: cover distinct span vocabularies (descent/split, put/flush/compaction,
#: probe/rehash, scan/rewrite).
_METHODS = ("btree", "lsm", "hash-index", "sorted-column")

_mixes = st.sampled_from([
    dict(point_queries=0.5, inserts=0.3, updates=0.2),
    dict(point_queries=0.3, range_queries=0.1, inserts=0.4, deletes=0.2),
    dict(point_queries=0.0, inserts=0.7, updates=0.2, deletes=0.1),
    dict(point_queries=0.8, range_queries=0.2),
])

_grids = st.lists(st.sampled_from(_METHODS), min_size=1, max_size=3,
                  unique=True)


def _cells(methods, mix, operations, initial_records):
    spec = WorkloadSpec(
        operations=operations, initial_records=initial_records, **mix
    )
    return [
        SweepCell.make(name, spec, block_bytes=256) for name in methods
    ]


def _profile_bytes(outcome) -> str:
    """Canonical JSON of the sweep's span profile — byte-comparable."""
    profile = SpanProfile.from_events(outcome.events)
    return json.dumps(profile.to_dict(), sort_keys=True)


@settings(max_examples=8, deadline=None)
@given(methods=_grids, mix=_mixes, operations=st.integers(60, 140))
def test_serial_and_parallel_sweeps_span_profiles_byte_identical(
    methods, mix, operations
):
    cells = _cells(methods, mix, operations, initial_records=300)
    serial = SweepEngine(jobs=1, collect_events=True).run(cells)
    parallel = SweepEngine(jobs=3, collect_events=True).run(cells)
    assert _profile_bytes(serial) == _profile_bytes(parallel)
    # The merged streams agree event for event, span stamps included.
    assert [e.span for e in serial.events] == [
        e.span for e in parallel.events
    ]


@settings(max_examples=6, deadline=None)
@given(methods=_grids, mix=_mixes, operations=st.integers(60, 120))
def test_warm_cache_hit_replays_identical_span_tree(
    tmp_path_factory, methods, mix, operations
):
    cache_dir = tmp_path_factory.mktemp("span-cache")
    cells = _cells(methods, mix, operations, initial_records=300)
    cache = ResultCache(str(cache_dir))
    cold = SweepEngine(jobs=1, cache=cache, collect_events=True).run(cells)
    warm = SweepEngine(jobs=1, cache=cache, collect_events=True).run(cells)
    assert cold.executed_cells == len(cells)
    assert warm.executed_cells == 0 and warm.cached_cells == len(cells)
    assert _profile_bytes(cold) == _profile_bytes(warm)
