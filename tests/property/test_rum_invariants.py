"""Property-based tests of the RUM accounting invariants.

The paper's Section 2 establishes 1.0 as the theoretical minimum of each
amplification ratio.  These properties check that the *measurement
machinery* respects those floors (individual structures may beat UO =
1.0 only through coalescing buffered updates to the same key, which the
paper's differential discussion allows — so UO is bounded below by the
coalescing-aware floor, not blindly by 1.0).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.registry import create_method
from repro.core.rum import measure_workload
from repro.core.space import barycentric_weights, project
from repro.core.rum import RUMProfile
from repro.storage.device import SimulatedDevice
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.spec import WorkloadSpec

from tests.conftest import SMALL_BLOCK

_MEASURED = ["btree", "hash-index", "zonemap", "lsm", "sorted-column", "unsorted-column"]


@pytest.mark.parametrize("name", _MEASURED)
@settings(max_examples=10, deadline=None)
@given(
    reads=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=100),
)
def test_measured_overheads_respect_floors(name, reads, seed):
    writes = 1.0 - reads
    spec = WorkloadSpec(
        point_queries=reads * 0.8,
        range_queries=reads * 0.2,
        inserts=writes * 0.5,
        updates=writes * 0.3,
        deletes=writes * 0.2,
        operations=120,
        initial_records=400,
        seed=seed,
    )
    method = create_method(name, device=SimulatedDevice(block_bytes=SMALL_BLOCK))
    generator = WorkloadGenerator(spec)
    method.bulk_load(generator.initial_data())
    profile = measure_workload(method, generator.operations())
    # Block granularity means a read always moves at least the data it
    # wanted; space always covers the base data.
    assert profile.read_overhead >= 1.0 - 1e-9
    assert profile.memory_overhead >= 1.0 - 1e-9
    assert profile.update_overhead >= 0.0
    assert profile.simulated_time >= 0.0


@settings(max_examples=100, deadline=None)
@given(
    ro=st.floats(min_value=1.0, max_value=1e9),
    uo=st.floats(min_value=1.0, max_value=1e9),
    mo=st.floats(min_value=1.0, max_value=1e9),
)
def test_projection_always_inside_triangle(ro, uo, mo):
    import math

    point = project(RUMProfile(ro, uo, mo))
    assert -1e-9 <= point.x <= 1.0 + 1e-9
    assert -1e-9 <= point.y <= math.sqrt(3) / 2 + 1e-9
    weights = barycentric_weights(RUMProfile(ro, uo, mo))
    assert sum(weights) == pytest.approx(1.0)
    assert all(w >= 0 for w in weights)


@settings(max_examples=100, deadline=None)
@given(
    ro=st.floats(min_value=1.0, max_value=1e6),
    uo=st.floats(min_value=1.0, max_value=1e6),
    mo=st.floats(min_value=1.0, max_value=1e6),
    factor=st.floats(min_value=1.1, max_value=10.0),
)
def test_dominance_is_consistent(ro, uo, mo, factor):
    base = RUMProfile(ro, uo, mo)
    worse = RUMProfile(ro * factor, uo, mo)
    assert base.dominates(worse)
    assert not worse.dominates(base)
    assert not base.dominates(base)
