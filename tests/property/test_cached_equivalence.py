"""Property tests: the cached device is an honest device.

Two contracts from ISSUE 1's accounting fixes, under random operation
sequences:

* a :class:`CachedDevice` with ``capacity_blocks=0`` is I/O-equivalent
  to a bare :class:`SimulatedDevice` with the same cost model — same
  payloads, same logical counters (including the sequential/random
  simulated-time classification), same backing traffic, same occupancy;
* every :class:`DeviceCounters` field is monotonic non-decreasing over
  any operation sequence, at any pool capacity.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.cached import CachedDevice
from repro.storage.device import CostModel, SimulatedDevice

from tests.conftest import SMALL_BLOCK

# An op is ("alloc",) or (verb, target) with target resolved modulo the
# number of live blocks, so every generated sequence is valid by
# construction once at least one block exists.
_OPS = st.one_of(
    st.tuples(st.just("alloc")),
    st.tuples(
        st.sampled_from(["read", "write", "free"]),
        st.integers(min_value=0, max_value=63),
    ),
)


def _apply(op, device, live, payload_tag):
    """Apply one op; returns the read payload (or None)."""
    if op[0] == "alloc":
        live.append(device.allocate())
        return None
    if not live:
        return None
    block = live[op[1] % len(live)]
    if op[0] == "read":
        return device.read(block)
    if op[0] == "write":
        used = (op[1] * 37) % (SMALL_BLOCK + 1)
        device.write(block, f"{payload_tag}-{op[1]}", used_bytes=used)
        return None
    live.remove(block)
    device.free(block)
    return None


def _assert_monotonic(previous, current, label):
    for before, after in zip(previous.as_tuple(), current.as_tuple()):
        assert after >= before, f"{label}: counter regressed {before} -> {after}"


@settings(max_examples=60, deadline=None)
@given(ops=st.lists(_OPS, max_size=60))
def test_zero_capacity_cache_is_io_equivalent_to_bare_device(ops):
    bare = SimulatedDevice(block_bytes=SMALL_BLOCK, cost_model=CostModel.dram())
    backing = SimulatedDevice(block_bytes=SMALL_BLOCK)
    cached = CachedDevice(backing, capacity_blocks=0)
    bare_live, cached_live = [], []

    previous = {"bare": bare.snapshot(), "cached": cached.snapshot()}
    for op in ops:
        bare_payload = _apply(op, bare, bare_live, "p")
        cached_payload = _apply(op, cached, cached_live, "p")
        assert bare_payload == cached_payload
        for label, device in (("bare", bare), ("cached", cached)):
            _assert_monotonic(previous[label], device.counters, label)
            previous[label] = device.snapshot()

    assert bare_live == cached_live
    # Logical counters agree field for field (same cost model: DRAM).
    assert cached.counters == bare.counters
    # Pass-through: the backing device saw every logical I/O too.
    assert backing.counters.reads == bare.counters.reads
    assert backing.counters.writes == bare.counters.writes
    assert backing.counters.allocations == bare.counters.allocations
    assert backing.counters.frees == bare.counters.frees
    # Same state: payloads and occupancy.
    for block in bare_live:
        assert cached.peek(block) == bare.peek(block)
    assert cached.used_bytes() == bare.used_bytes()
    assert cached.fill_factor() == bare.fill_factor()
    assert cached.allocated_blocks == bare.allocated_blocks


@settings(max_examples=40, deadline=None)
@given(
    ops=st.lists(_OPS, max_size=60),
    capacity=st.integers(min_value=1, max_value=8),
)
def test_counters_stay_monotonic_at_any_capacity(ops, capacity):
    backing = SimulatedDevice(block_bytes=SMALL_BLOCK)
    cached = CachedDevice(backing, capacity_blocks=capacity)
    live = []
    previous = {"logical": cached.snapshot(), "backing": backing.snapshot()}
    for op in ops:
        _apply(op, cached, live, "q")
        _assert_monotonic(previous["logical"], cached.counters, "logical")
        _assert_monotonic(previous["backing"], backing.counters, "backing")
        previous = {"logical": cached.snapshot(), "backing": backing.snapshot()}
    cached.flush()
    _assert_monotonic(previous["logical"], cached.counters, "logical")
    _assert_monotonic(previous["backing"], backing.counters, "backing")
    # After a flush the wrapper's occupancy equals the backing's.
    assert cached.used_bytes() == backing.used_bytes()
