"""Persistence properties: structures survive pickling intact.

The device and every access method must round-trip through pickle —
state fully captured by their objects, no hidden process-local handles.
This is the library's "restart" story: a simulated system image can be
saved and resumed with identical behaviour and identical accounting.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.registry import available_methods
from repro.storage.device import SimulatedDevice

from tests.conftest import SMALL_BLOCK, sample_records
from tests.unit.test_method_contract import build

ALL_METHODS = sorted(available_methods())


class TestDevicePersistence:
    def test_device_roundtrip(self):
        device = SimulatedDevice(block_bytes=SMALL_BLOCK)
        block = device.allocate(kind="x")
        device.write(block, [1, 2, 3], used_bytes=48)
        clone = pickle.loads(pickle.dumps(device))
        assert clone.read(block) == [1, 2, 3]
        assert clone.allocated_blocks == device.allocated_blocks
        assert clone.counters.writes == device.counters.writes

    def test_clone_is_independent(self):
        device = SimulatedDevice(block_bytes=SMALL_BLOCK)
        block = device.allocate()
        device.write(block, "original")
        clone = pickle.loads(pickle.dumps(device))
        clone.write(block, "changed")
        assert device.peek(block) == "original"


@pytest.mark.parametrize("name", ALL_METHODS)
def test_method_roundtrip(name):
    method = build(name)
    records = sample_records(80)
    method.bulk_load(records)
    method.insert(999, 1)
    method.update(10, 111)
    method.delete(12)

    clone = pickle.loads(pickle.dumps(method))

    oracle = dict(records)
    oracle[999] = 1
    oracle[10] = 111
    del oracle[12]
    assert len(clone) == len(oracle)
    for key in list(oracle)[:20] + [999, 10]:
        assert clone.get(key) == oracle[key]
    assert clone.get(12) is None
    assert clone.range_query(-1, 10**9) == sorted(oracle.items())


@pytest.mark.parametrize("name", ALL_METHODS)
def test_clone_remains_mutable(name):
    method = build(name)
    method.bulk_load(sample_records(40))
    clone = pickle.loads(pickle.dumps(method))
    clone.insert(5001, 7)
    clone.update(10, 888)
    clone.delete(14)
    assert clone.get(5001) == 7
    assert clone.get(10) == 888
    assert clone.get(14) is None
    # The original is untouched.
    assert method.get(5001) is None
    assert method.get(10) == 101
    assert method.get(14) == 141
