"""Property: a chained hierarchy is indistinguishable from a bare device.

Whatever the op sequence, the level capacities, the write policies and
the inclusion modes, the stack must behave like transparent caching:

(a) every read returns exactly what a bare device running the same
    sequence returns (no stale copies — the layering bug the chained
    design exists to prevent),
(b) per-level counter conservation holds after **every** operation
    (traffic passed down at level n equals traffic reaching level n+1),
(c) ``flush()`` leaves every level clean and the backing device
    authoritative for every block.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.device import SimulatedDevice
from repro.storage.hierarchy import LevelSpec, MemoryHierarchy
from repro.storage.pager import ClockPolicy, LRUPolicy

N_BLOCKS = 12
BLOCK_BYTES = 64

#: One operation: (is_write, block index, payload token, used_bytes).
_ops = st.lists(
    st.tuples(
        st.booleans(),
        st.integers(min_value=0, max_value=N_BLOCKS - 1),
        st.integers(min_value=0, max_value=9),
        st.integers(min_value=0, max_value=BLOCK_BYTES),
    ),
    max_size=40,
)

_levels = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=6),
        st.sampled_from(["write-back", "write-through"]),
        st.sampled_from(["inclusive", "exclusive"]),
    ),
    min_size=1,
    max_size=3,
)

_policies = st.sampled_from([LRUPolicy, ClockPolicy])


def _build(level_params, policy_factory):
    backing = SimulatedDevice(block_bytes=BLOCK_BYTES, name="backing")
    blocks = []
    for index in range(N_BLOCKS):
        block = backing.allocate()
        backing.write(block, f"seed-{index}", used_bytes=index)
        blocks.append(block)
    specs = [
        LevelSpec(
            name=f"L{i}",
            capacity_blocks=capacity,
            write_policy=write_policy,
            inclusion=inclusion,
        )
        for i, (capacity, write_policy, inclusion) in enumerate(level_params)
    ]
    return backing, blocks, MemoryHierarchy(backing, specs, policy_factory)


@settings(max_examples=60, deadline=None)
@given(ops=_ops, level_params=_levels, policy_factory=_policies)
def test_chain_is_read_equivalent_and_conserving(ops, level_params, policy_factory):
    backing, blocks, hierarchy = _build(level_params, policy_factory)
    # The bare-device twin: same seeded content, no caching at all.
    twin = SimulatedDevice(block_bytes=BLOCK_BYTES, name="twin")
    twin_blocks = []
    for index in range(N_BLOCKS):
        block = twin.allocate()
        twin.write(block, f"seed-{index}", used_bytes=index)
        twin_blocks.append(block)

    for is_write, index, token, used_bytes in ops:
        if is_write:
            hierarchy.write(blocks[index], f"v-{token}", used_bytes=used_bytes)
            twin.write(twin_blocks[index], f"v-{token}", used_bytes=used_bytes)
        else:
            got = hierarchy.read(blocks[index])
            want = twin.read(twin_blocks[index])
            assert got == want, f"stale read of block {index}"
        assert hierarchy.audit() == []

    hierarchy.flush()
    assert hierarchy.audit() == []
    for level in hierarchy.levels:
        assert level.pool.dirty_blocks == 0
    for block, twin_block in zip(blocks, twin_blocks):
        assert backing.peek(block) == twin.peek(twin_block)
        assert backing.used_bytes_of(block) == twin.used_bytes_of(twin_block)
