"""Property tests for the structural audits and fault injection.

Three guarantees are exercised here:

1. **Audits are quiet on healthy structures.** After any accepted
   operation sequence, every registered method's ``audit()`` returns no
   violations — the invariants the audits encode really are invariants.
2. **Audits are loud on corrupted structures.** Scarring a data block
   behind the method's back (as a torn write would) is always detected
   by the methods that implement a structural audit.
3. **First-access faults are crash-consistent.** If the *first* device
   access of an operation fails, the audited methods either complete
   the operation or leave no trace: the audit stays clean, the oracle
   still agrees, and the operation succeeds on retry.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.check import DeviceFault, FaultPlan, FaultyDevice
from repro.check.faults import TORN_PAYLOAD
from repro.core.registry import available_methods, create_method
from repro.storage.device import SimulatedDevice

from tests.conftest import SMALL_BLOCK
from tests.unit.test_method_contract import TUNED_KWARGS, build

ALL_METHODS = sorted(available_methods())

#: The methods with a structural ``_audit_structure`` override, paired
#: with the block kind whose payload the corruption test scars.
AUDITED_METHODS = [
    ("sorted-column", "sorted"),
    ("unsorted-column", "heap"),
    ("btree", "btree-leaf"),
    ("lsm", "lsm-data"),
    ("zonemap", "partition"),
    ("hash-index", "bucket"),
    ("sparse-index", "sparse-data"),
    ("trie", "trie-node"),
    ("skiplist", "skiplist-arena"),
]

_script = st.lists(
    st.tuples(
        st.sampled_from(["insert", "update", "delete", "get", "range"]),
        st.integers(min_value=0, max_value=63),
    ),
    max_size=30,
)


def _apply(method, oracle, action, key):
    """Apply one accepted operation to both method and oracle.

    Only operations the contract accepts are issued: fresh keys for
    inserts, live keys for updates/deletes.  (Methods that skip
    duplicate detection would silently diverge from the oracle on a
    duplicate insert.)
    """
    if action == "insert":
        if key not in oracle:
            method.insert(key, key * 3)
            oracle[key] = key * 3
    elif action == "update":
        if key in oracle:
            method.update(key, key * 5)
            oracle[key] = key * 5
    elif action == "delete":
        if key in oracle:
            method.delete(key)
            del oracle[key]
    elif action == "get":
        assert method.get(key) == oracle.get(key)
    elif action == "range":
        low = key
        expected = [(k, v) for k, v in sorted(oracle.items()) if low <= k <= low + 16]
        assert method.range_query(low, low + 16) == expected


@pytest.mark.parametrize("name", ALL_METHODS)
@settings(max_examples=15, deadline=None)
@given(script=_script)
def test_audit_quiet_after_accepted_operations(name, script):
    method = build(name)
    initial = [(2 * i, i) for i in range(32)]
    method.bulk_load(initial)
    oracle = dict(initial)
    for action, key in script:
        _apply(method, oracle, action, key)
    assert method.audit() == []
    method.flush()
    assert method.audit() == []
    assert method.range_query(-1, 10**9) == sorted(oracle.items())


@pytest.mark.parametrize("name,kind", AUDITED_METHODS)
def test_audit_loud_on_scarred_block(name, kind):
    """A torn-write scar planted behind the method's back is detected."""
    method = build(name)
    method.bulk_load([(2 * i, i) for i in range(64)])
    method.flush()
    assert method.audit() == []
    device = method.device
    block = next(
        b for b in device.iter_block_ids() if device.kind_of(b) == kind
    )
    device.write(block, TORN_PAYLOAD, used_bytes=0)
    assert method.audit(), f"{name} audit missed a scarred {kind} block"


def _build_faulty(name):
    device = FaultyDevice(SimulatedDevice(block_bytes=SMALL_BLOCK))
    return create_method(name, device=device, **TUNED_KWARGS.get(name, {}))


#: Fault the operation's first device access, whichever op it is.
FIRST_ACCESS = FaultPlan(fail_read_at=1, fail_write_at=1, max_faults=1)

AUDITED_NAMES = [name for name, _ in AUDITED_METHODS]


@pytest.mark.parametrize("name", AUDITED_NAMES)
@settings(max_examples=15, deadline=None)
@given(script=_script)
def test_first_access_fault_is_crash_consistent(name, script):
    method = _build_faulty(name)
    device = method.device
    initial = [(2 * i, i) for i in range(32)]
    method.bulk_load(initial)
    method.flush()
    oracle = dict(initial)
    for action, key in script:
        device.arm(FIRST_ACCESS)
        try:
            _apply(method, oracle, action, key)
        except DeviceFault:
            # The op was cut down at its first device access: it must
            # have left no trace, and must succeed when retried.
            device.disarm()
            assert method.audit() == []
            _apply(method, oracle, action, key)
        finally:
            device.disarm()
        assert method.audit() == []
    assert method.range_query(-1, 10**9) == sorted(oracle.items())
