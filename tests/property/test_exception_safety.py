"""Property tests: rejected operations must not corrupt state.

Every structure raises on contract violations (duplicate insert, update
or delete of an absent key).  These properties check the *strong
guarantee*: after any number of rejected operations interleaved with
accepted ones, the structure still agrees with the oracle exactly.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.registry import available_methods
from tests.unit.test_method_contract import build

ALL_METHODS = sorted(available_methods())

_script = st.lists(
    st.tuples(
        st.sampled_from(["insert", "dup-insert", "update", "bad-update",
                         "delete", "bad-delete"]),
        st.integers(min_value=0, max_value=63),
    ),
    max_size=40,
)


@pytest.mark.parametrize("name", ALL_METHODS)
@settings(max_examples=20, deadline=None)
@given(script=_script)
def test_rejected_operations_leave_no_trace(name, script):
    method = build(name)
    initial = [(2 * i, i) for i in range(32)]
    method.bulk_load(initial)
    oracle = dict(initial)
    for action, key in script:
        if action == "insert":
            if key not in oracle:
                method.insert(key, key * 3)
                oracle[key] = key * 3
        elif action == "dup-insert":
            # Only structures that advertise duplicate detection must
            # raise; for the rest (heap-like layouts, where the check
            # would cost a scan) duplicate inserts are undefined
            # behaviour and are not exercised.
            if key in oracle and method.capabilities.checks_duplicates:
                with pytest.raises(ValueError):
                    method.insert(key, 999_999)
        elif action == "update":
            if key in oracle:
                method.update(key, key * 5)
                oracle[key] = key * 5
        elif action == "bad-update":
            if key not in oracle:
                with pytest.raises(KeyError):
                    method.update(key, 999_999)
        elif action == "delete":
            if key in oracle:
                method.delete(key)
                del oracle[key]
        elif action == "bad-delete":
            if key not in oracle:
                with pytest.raises(KeyError):
                    method.delete(key)
    assert len(method) == len(oracle)
    assert method.range_query(-1, 10**9) == sorted(oracle.items())
    for key in range(0, 128, 3):
        assert method.get(key) == oracle.get(key)


@pytest.mark.parametrize("name", ALL_METHODS)
def test_rejected_ops_do_not_leak_space(name):
    """A burst of rejected operations must not grow the footprint."""
    method = build(name)
    method.bulk_load([(2 * i, i) for i in range(32)])
    method.flush()
    space_before = method.space_bytes()
    for _ in range(20):
        if method.capabilities.checks_duplicates:
            with pytest.raises(ValueError):
                method.insert(0, 1)  # duplicate
        with pytest.raises(KeyError):
            method.update(999_999, 1)
        with pytest.raises(KeyError):
            method.delete(999_999)
    method.flush()
    # Allow small slack for structures that lazily reorganize on probe
    # (adaptive structures legitimately note the probed ranges), plus an
    # absolute allowance so the tiny test dataset doesn't dominate.
    assert method.space_bytes() <= space_before * 1.25 + 1024
