"""Property: windowed live telemetry conserves the whole-run totals.

``WindowedRUM`` promises that every integer the device-delta pipeline
measures lands in *exactly one* window: summing the per-window frames
(plus anything folded out by ring eviction) reproduces the whole-run
``RUMAccumulator`` fields byte-for-byte — no tolerances, for any
workload mix, window width, ring size, or batch size.  A second
property pins the sweep-engine contract behind ``repro top``: the
``run_live_cell`` runner returns the same JSON-pure dict whether the
engine runs serially or across worker processes.
"""

from __future__ import annotations

import json
from dataclasses import replace

from hypothesis import given, settings, strategies as st

from repro.core.registry import create_method
from repro.core.rum import RUMAccumulator
from repro.obs.live import WindowedRUM, run_live_workload
from repro.storage.device import SimulatedDevice
from repro.workloads.runner import run_workload
from repro.workloads.spec import MIXES

from tests.conftest import SMALL_BLOCK

_MIX_NAMES = ["balanced", "read-mostly", "write-heavy", "scan-heavy"]
_METHODS = ["btree", "lsm", "hash-index"]


def _make_spec(mix: str, seed: int):
    return replace(
        MIXES[mix], initial_records=120, operations=150, seed=seed
    )


@settings(max_examples=25, deadline=None)
@given(
    method=st.sampled_from(_METHODS),
    mix=st.sampled_from(_MIX_NAMES),
    seed=st.integers(min_value=0, max_value=2**16),
    width=st.floats(min_value=0.5, max_value=500.0,
                    allow_nan=False, allow_infinity=False),
    ring_size=st.integers(min_value=1, max_value=16),
    batch_size=st.sampled_from([1, 7, 256]),
)
def test_window_sums_equal_accumulator_exactly(
    method, mix, seed, width, ring_size, batch_size
):
    structure = create_method(
        method, device=SimulatedDevice(block_bytes=SMALL_BLOCK)
    )
    live = WindowedRUM(width, ring_size=ring_size)
    accumulator = RUMAccumulator()
    run_workload(
        structure,
        _make_spec(mix, seed),
        accumulator=accumulator,
        batch_size=batch_size,
        live=live,
    )
    totals = live.totals()
    for name in WindowedRUM.INT_FIELDS:
        assert totals[name] == getattr(accumulator, name), (
            f"{name} diverged: width={width} ring={ring_size} "
            f"batch={batch_size}"
        )
    # The retained frames plus the eviction fold re-sum to the same
    # totals — eviction loses resolution, never mass.
    evicted = live.evicted_totals
    for name in WindowedRUM.INT_FIELDS:
        frame_sum = sum(f[name] for f in live.frames())
        assert frame_sum + evicted[name] == totals[name]


@settings(max_examples=8, deadline=None)
@given(
    mix=st.sampled_from(_MIX_NAMES),
    seed=st.integers(min_value=0, max_value=2**16),
    width=st.floats(min_value=10.0, max_value=200.0,
                    allow_nan=False, allow_infinity=False),
)
def test_run_live_workload_is_conserved_and_self_consistent(
    mix, seed, width
):
    method = create_method(
        "btree", device=SimulatedDevice(block_bytes=SMALL_BLOCK)
    )
    result = run_live_workload(method, _make_spec(mix, seed), width=width)
    assert result["conserved"] is True
    assert result["totals"] == result["run_totals"]
    # The payload must survive a JSON round-trip unchanged — the sweep
    # engine ships it between processes as JSON, and ``repro top`` bets
    # byte-identity on that.
    assert json.loads(json.dumps(result)) == result


def test_engine_results_identical_serial_vs_parallel():
    """`repro top --jobs N` byte-identity, pinned at the engine layer."""
    from repro.exec import SweepCell, SweepEngine

    def run(jobs):
        cell = SweepCell.make(
            "btree",
            _make_spec("balanced", seed=7),
            params={"window": 40.0, "ring": 8, "hysteresis": 2},
            runner="repro.obs.live:run_live_cell",
        )
        with SweepEngine(jobs=jobs) as engine:
            outcome = engine.run([cell])
        return json.dumps(outcome.results[0], indent=2, sort_keys=True)

    assert run(1) == run(2)
