"""Property-based tests of the probabilistic filters and WAH coding."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.filters.bloom import BloomFilter, CountingBloomFilter
from repro.filters.countmin import CountMinSketch
from repro.filters.quotient import QuotientFilter
from repro.methods.bitmap import WAHBitVector

_keys = st.lists(st.integers(min_value=0, max_value=2**60), max_size=200)


@settings(max_examples=50, deadline=None)
@given(keys=_keys)
def test_bloom_never_false_negative(keys):
    bloom = BloomFilter(max(1, len(keys)), 0.01)
    for key in keys:
        bloom.add(key)
    assert all(bloom.may_contain(key) for key in keys)


@settings(max_examples=50, deadline=None)
@given(keys=st.lists(st.integers(min_value=0, max_value=2**60), max_size=100, unique=True))
def test_counting_bloom_removal_consistency(keys):
    bloom = CountingBloomFilter(max(1, len(keys)), 0.01)
    for key in keys:
        bloom.add(key)
    removed = keys[: len(keys) // 2]
    kept = keys[len(keys) // 2 :]
    for key in removed:
        bloom.remove(key)
    # Kept keys must still test positive (no false negatives on live keys).
    assert all(bloom.may_contain(key) for key in kept)


@settings(max_examples=50, deadline=None)
@given(keys=st.lists(st.integers(min_value=0, max_value=2**60), max_size=300, unique=True))
def test_quotient_filter_no_false_negatives(keys):
    qf = QuotientFilter(quotient_bits=10, remainder_bits=10)
    usable = keys[: qf.capacity - 1]
    for key in usable:
        qf.add(key)
    assert all(qf.may_contain(key) for key in usable)


@settings(max_examples=50, deadline=None)
@given(
    keys=st.lists(st.integers(min_value=0, max_value=2**60), max_size=200, unique=True)
)
def test_quotient_filter_remove_keeps_others(keys):
    qf = QuotientFilter(quotient_bits=10, remainder_bits=12)
    usable = keys[: qf.capacity - 1]
    for key in usable:
        qf.add(key)
    removed = usable[: len(usable) // 2]
    kept = usable[len(usable) // 2 :]
    for key in removed:
        qf.remove(key)
    assert all(qf.may_contain(key) for key in kept)


@settings(max_examples=50, deadline=None)
@given(
    counts=st.dictionaries(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=1, max_value=50),
        max_size=100,
    )
)
def test_countmin_never_undercounts(counts):
    sketch = CountMinSketch(epsilon=0.01, delta=0.05)
    for key, count in counts.items():
        sketch.add(key, count)
    for key, count in counts.items():
        assert sketch.estimate(key) >= count


@settings(max_examples=80, deadline=None)
@given(
    positions=st.lists(
        st.integers(min_value=0, max_value=20_000), max_size=300, unique=True
    )
)
def test_wah_roundtrip(positions):
    vector = WAHBitVector()
    for position in positions:
        vector.set(position)
    decoded = WAHBitVector.decode(vector.encode(), vector.length)
    assert decoded.positions() == sorted(positions)


@settings(max_examples=50, deadline=None)
@given(
    set_positions=st.lists(
        st.integers(min_value=0, max_value=5000), max_size=100, unique=True
    ),
    clear_positions=st.lists(
        st.integers(min_value=0, max_value=5000), max_size=100, unique=True
    ),
)
def test_wah_set_clear_consistency(set_positions, clear_positions):
    vector = WAHBitVector()
    for position in set_positions:
        vector.set(position)
    for position in clear_positions:
        vector.set(position, False)
    expected = sorted(set(set_positions) - set(clear_positions))
    assert vector.positions() == expected


@settings(max_examples=40, deadline=None)
@given(
    records=st.lists(
        st.tuples(st.integers(0, 10**6), st.integers(0, 10**6)),
        max_size=60,
        unique_by=lambda record: record[0],
    ),
    keys=st.lists(st.integers(0, 10**6), max_size=40),
)
def test_trace_roundtrip_property(records, keys):
    """Any dataset + operation stream survives a trace round-trip."""
    import os
    import tempfile

    from repro.workloads.spec import Operation, OpKind
    from repro.workloads.trace import load_trace, save_trace

    operations = []
    for index, key in enumerate(keys):
        kind = [OpKind.POINT_QUERY, OpKind.INSERT, OpKind.UPDATE,
                OpKind.DELETE, OpKind.RANGE_QUERY][index % 5]
        if kind is OpKind.RANGE_QUERY:
            operations.append(Operation(kind, key, high_key=key + 10))
        elif kind in (OpKind.INSERT, OpKind.UPDATE):
            operations.append(Operation(kind, key, value=index))
        else:
            operations.append(Operation(kind, key))
    path = os.path.join(tempfile.mkdtemp(), "prop.trace")
    save_trace(path, records, operations)
    loaded_records, loaded_operations = load_trace(path)
    assert loaded_records == records
    assert loaded_operations == operations
