"""Space-leak detection: churn must not grow footprints unboundedly.

Repeated insert/delete cycles over a stable live set should leave every
structure's device footprint bounded — forgotten ``free`` calls or
never-reclaimed auxiliary blocks show up here as monotone growth.

The plain ``append-log`` is excluded by design: Prop 2's whole point is
that its footprint grows without bound.
"""

from __future__ import annotations

import pytest

from repro.core.registry import available_methods
from tests.unit.test_method_contract import build

#: Structures whose footprint growth under churn is *by design*
#: unbounded without maintenance (the Prop-2 log) are exempt.
UNBOUNDED_BY_DESIGN = {"append-log"}

CHURN_METHODS = sorted(set(available_methods()) - UNBOUNDED_BY_DESIGN)


@pytest.mark.parametrize("name", CHURN_METHODS)
def test_insert_delete_cycles_do_not_leak_blocks(name):
    method = build(name)
    method.bulk_load([(2 * i, i) for i in range(64)])
    method.flush()
    footprints = []
    key = 10_001
    for cycle in range(6):
        inserted = []
        for _ in range(48):
            method.insert(key, key)
            inserted.append(key)
            key += 2
        for k in inserted:
            method.delete(k)
        method.flush()
        method.maintenance()
        footprints.append(method.device.allocated_blocks)
    # The footprint must stabilize: the last cycle may not exceed the
    # maximum of the first two by more than 50%.
    ceiling = 1.5 * max(footprints[:2])
    assert footprints[-1] <= ceiling, footprints


@pytest.mark.parametrize("name", CHURN_METHODS)
def test_update_churn_footprint_bounded(name):
    method = build(name)
    method.bulk_load([(2 * i, i) for i in range(64)])
    method.flush()
    baseline = method.device.allocated_blocks
    for i in range(300):
        method.update(2 * (i % 64), i)
    method.flush()
    method.maintenance()
    # Live data never changed; tolerate transient run/segment slack of a
    # few multiples of the base footprint, but not unbounded growth.
    assert method.device.allocated_blocks <= max(6 * baseline, baseline + 24), (
        baseline,
        method.device.allocated_blocks,
    )
