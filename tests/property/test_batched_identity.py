"""Property: batched execution is byte-identical to per-op execution.

The batch-first measurement pipeline (``operation_batches`` +
``measure_workload_batched`` + the methods' ``get_many``/``put_many``/
``apply_batch`` overrides) promises the *same observable measurement* as
the per-op loop, for every batch size: the RUM profile, the span
profile, and the serialized device trace stream may not differ by a
byte.  These properties drive both paths from identical specs and
compare the artifacts exactly — no tolerances, since the counters are
integers and every derived float is computed from identical integer
sums.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.registry import available_methods, create_method
from repro.core.rum import measure_workload, measure_workload_batched
from repro.obs.sinks import ListSink
from repro.obs.spans import SpanProfile, span_collection
from repro.obs.tracer import RecordingTracer
from repro.storage.device import SimulatedDevice
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.spec import MIXES

from tests.conftest import SMALL_BLOCK

#: The methods with hand-written batched overrides, plus a cross-section
#: of loop-fallback structures — the property must hold for both.
_METHODS = [
    "btree",
    "lsm",
    "hash-index",
    "sorted-column",
    "unsorted-column",
    "skiplist",
    "zonemap",
]

_MIX_NAMES = ["balanced", "read-mostly", "write-heavy", "scan-heavy"]


def _make_spec(mix: str, seed: int, operations: int = 150):
    from dataclasses import replace

    return replace(
        MIXES[mix], initial_records=120, operations=operations, seed=seed
    )


def _run(name: str, spec, batch_size: int, traced: bool = False):
    """One measured run; returns (profile, serialized trace events)."""
    sink = ListSink()
    device = SimulatedDevice(block_bytes=SMALL_BLOCK)
    if traced:
        device.set_tracer(RecordingTracer(sink))
    method = create_method(name, device=device)
    generator = WorkloadGenerator(spec)
    method.bulk_load(generator.initial_data())
    method.flush()
    if batch_size == 1:
        profile = measure_workload(method, generator.operations())
    else:
        profile = measure_workload_batched(
            method, generator.operation_batches(batch_size)
        )
    return profile, [event.to_dict() for event in sink.events]


@settings(max_examples=25, deadline=None)
@given(
    name=st.sampled_from(_METHODS),
    mix=st.sampled_from(_MIX_NAMES),
    batch_size=st.sampled_from([2, 3, 7, 16, 64, 256]),
    seed=st.integers(min_value=0, max_value=50),
)
def test_batched_profile_identical_to_per_op(name, mix, batch_size, seed):
    spec = _make_spec(mix, seed)
    per_op, _ = _run(name, spec, batch_size=1)
    batched, _ = _run(name, spec, batch_size=batch_size)
    assert batched == per_op


@settings(max_examples=10, deadline=None)
@given(
    name=st.sampled_from(["btree", "lsm", "hash-index", "unsorted-column"]),
    mix=st.sampled_from(_MIX_NAMES),
    batch_size=st.sampled_from([2, 16, 256]),
    seed=st.integers(min_value=0, max_value=50),
)
def test_batched_trace_stream_identical_to_per_op(name, mix, batch_size, seed):
    """The device emits its own trace events in access order, so the
    batched overrides must touch blocks in exactly the per-op order."""
    spec = _make_spec(mix, seed, operations=100)
    per_op_profile, per_op_events = _run(name, spec, batch_size=1, traced=True)
    batched_profile, batched_events = _run(
        name, spec, batch_size=batch_size, traced=True
    )
    assert batched_profile == per_op_profile
    assert batched_events == per_op_events


@settings(max_examples=8, deadline=None)
@given(
    name=st.sampled_from(["btree", "lsm", "sorted-column"]),
    batch_size=st.sampled_from([2, 64]),
    seed=st.integers(min_value=0, max_value=20),
)
def test_batched_span_profile_identical_to_per_op(name, batch_size, seed):
    """With span collection active the batched loop falls back per-op,
    so the span profile (phase attribution) is identity by construction
    — pinned here so the fallback cannot silently disappear."""
    spec = _make_spec("balanced", seed, operations=100)

    def run(batch_size: int):
        sink = ListSink()
        device = SimulatedDevice(block_bytes=SMALL_BLOCK)
        device.set_tracer(RecordingTracer(sink))
        method = create_method(name, device=device)
        generator = WorkloadGenerator(spec)
        with span_collection():
            method.bulk_load(generator.initial_data())
            method.flush()
            if batch_size == 1:
                profile = measure_workload(method, generator.operations())
            else:
                profile = measure_workload_batched(
                    method, generator.operation_batches(batch_size)
                )
        # SpanProfile is built canonically from the event stream, so
        # identical span-stamped events imply an identical span profile;
        # building it anyway guards the aggregation path too.
        SpanProfile.from_events(sink.events)
        return profile, [event.to_dict() for event in sink.events]

    assert run(batch_size) == run(1)


@pytest.mark.parametrize("name", available_methods())
def test_every_registered_method_is_batch_identical(name):
    """One fixed spec across the whole registry: loop fallbacks and
    hand-written overrides alike must preserve the measurement."""
    spec = _make_spec("balanced", seed=13, operations=80)
    per_op, _ = _run(name, spec, batch_size=1)
    batched, _ = _run(name, spec, batch_size=16)
    assert batched == per_op
