"""Operational invariants: flush idempotence and run determinism."""

from __future__ import annotations

import pytest

from repro.core.registry import available_methods, create_method
from repro.storage.device import SimulatedDevice
from repro.workloads.runner import run_workload
from repro.workloads.spec import WorkloadSpec

from tests.conftest import SMALL_BLOCK, sample_records
from tests.unit.test_method_contract import TUNED_KWARGS, build

ALL_METHODS = sorted(available_methods())


@pytest.mark.parametrize("name", ALL_METHODS)
def test_flush_is_idempotent(name):
    """A second flush with nothing new buffered performs no writes."""
    method = build(name)
    method.bulk_load(sample_records(64))
    for i in range(20):
        method.update(2 * (i % 64), i)
    method.flush()
    before = method.device.snapshot()
    method.flush()
    io = method.device.stats_since(before)
    assert io.writes == 0, f"{name}: second flush wrote {io.writes} blocks"


@pytest.mark.parametrize("name", ALL_METHODS)
def test_flush_does_not_change_contents(name):
    method = build(name)
    records = sample_records(64)
    method.bulk_load(records)
    method.update(10, 999)
    state_before = method.range_query(-1, 10**9)
    method.flush()
    assert method.range_query(-1, 10**9) == state_before


SPEC = WorkloadSpec(
    point_queries=0.35,
    range_queries=0.05,
    inserts=0.3,
    updates=0.2,
    deletes=0.1,
    operations=200,
    initial_records=600,
)


@pytest.mark.parametrize("name", ALL_METHODS)
def test_runs_are_deterministic(name):
    """Identical spec + identical construction => identical profile."""
    profiles = []
    for _ in range(2):
        method = create_method(
            name,
            device=SimulatedDevice(block_bytes=SMALL_BLOCK),
            **TUNED_KWARGS.get(name, {}),
        )
        profiles.append(run_workload(method, SPEC).profile)
    assert profiles[0] == profiles[1]


@pytest.mark.parametrize("name", ALL_METHODS)
def test_maintenance_preserves_contents(name):
    """Background reorganization must never change logical contents."""
    method = build(name)
    method.bulk_load(sample_records(64))
    for i in range(40):
        key = 2 * (i % 64)
        if i % 7 == 3:
            try:
                method.delete(key)
            except KeyError:
                pass
        else:
            try:
                method.update(key, i)
            except KeyError:
                pass
    state_before = method.range_query(-1, 10**9)
    count_before = len(method)
    method.maintenance()
    assert method.range_query(-1, 10**9) == state_before
    assert len(method) == count_before
    # Maintenance is quiescent-idempotent: a second pass right after
    # the first performs no further writes.
    before = method.device.snapshot()
    method.maintenance()
    assert method.device.stats_since(before).writes == 0, name


@pytest.mark.parametrize("name", ALL_METHODS)
def test_device_occupancy_accounting_is_sane(name):
    """Declared block occupancy never exceeds capacity; space >= usage."""
    method = build(name)
    method.bulk_load(sample_records(128))
    for i in range(64):
        method.update(2 * (i % 128), i)
    method.flush()
    device = method.device
    assert 0.0 <= device.fill_factor() <= 1.0
    assert device.used_bytes() <= device.allocated_bytes
