"""Property-based model checking of every access method.

Hypothesis drives random operation sequences against each structure and
a dict oracle simultaneously; any divergence in results, lengths or
exceptions is a bug.  This is the strongest correctness net in the
suite — it has no idea how the structures work, only what they promise.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.registry import available_methods, create_method
from repro.storage.device import SimulatedDevice

from tests.conftest import SMALL_BLOCK
from tests.unit.test_method_contract import TUNED_KWARGS

ALL_METHODS = sorted(available_methods())

#: Operation atoms: (kind, key or offset, value)
_ops = st.lists(
    st.tuples(
        st.sampled_from(["get", "range", "insert", "update", "delete"]),
        st.integers(min_value=0, max_value=127),
        st.integers(min_value=0, max_value=10_000),
    ),
    max_size=40,
)

_initial = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=127),
        st.integers(min_value=0, max_value=10_000),
    ),
    max_size=30,
    unique_by=lambda record: record[0],
)


def _build(name: str):
    device = SimulatedDevice(block_bytes=SMALL_BLOCK)
    return create_method(name, device=device, **TUNED_KWARGS.get(name, {}))


@pytest.mark.parametrize("name", ALL_METHODS)
@settings(max_examples=25, deadline=None)
@given(initial=_initial, operations=_ops)
def test_method_matches_dict_oracle(name, initial, operations):
    method = _build(name)
    method.bulk_load(initial)
    oracle = dict(initial)
    fresh_key = 1000
    for kind, key, value in operations:
        if kind == "get":
            assert method.get(key) == oracle.get(key)
        elif kind == "range":
            hi = key + (value % 64)
            expected = sorted((k, v) for k, v in oracle.items() if key <= k <= hi)
            assert method.range_query(key, hi) == expected
        elif kind == "insert":
            if key in oracle:
                continue  # unique-key contract
            method.insert(key, value)
            oracle[key] = value
        elif kind == "update":
            if key in oracle:
                method.update(key, value)
                oracle[key] = value
            else:
                with pytest.raises(KeyError):
                    method.update(key, value)
        elif kind == "delete":
            if key in oracle:
                method.delete(key)
                del oracle[key]
            else:
                with pytest.raises(KeyError):
                    method.delete(key)
    assert len(method) == len(oracle)
    assert method.range_query(-1, 10**9) == sorted(oracle.items())


@pytest.mark.parametrize("name", ALL_METHODS)
@settings(max_examples=15, deadline=None)
@given(initial=_initial)
def test_bulk_load_preserves_everything(name, initial):
    method = _build(name)
    method.bulk_load(initial)
    for key, value in initial:
        assert method.get(key) == value
    assert len(method) == len(initial)


@pytest.mark.parametrize("name", ALL_METHODS)
@settings(max_examples=15, deadline=None)
@given(
    initial=_initial,
    lo=st.integers(min_value=-10, max_value=200),
    span=st.integers(min_value=0, max_value=200),
)
def test_range_query_properties(name, initial, lo, span):
    """Range results are sorted, in-bounds, duplicate-free and agree
    with point queries."""
    method = _build(name)
    method.bulk_load(initial)
    hi = lo + span
    result = method.range_query(lo, hi)
    keys = [key for key, _ in result]
    assert keys == sorted(keys)
    assert len(set(keys)) == len(keys)
    assert all(lo <= key <= hi for key in keys)
    for key, value in result:
        assert method.get(key) == value
