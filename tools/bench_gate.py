"""Perf-regression gate over span profiles.

Diffs two profiles written by ``python -m repro explain <method> --json``
— a committed baseline and a fresh candidate — span by span, and fails
(exit 1) when the candidate regressed beyond threshold on either axis:

* **throughput**: ``ops_per_sec`` dropped by more than ``--ops-threshold``
  (wall-clock, so the default tolerance is generous);
* **byte attribution**: any span's read/write/RO/UO byte counters grew by
  more than ``--byte-threshold``, or a span gained bytes out of nowhere.
  Byte attribution is fully deterministic, so drift here is a real
  behaviour change (an extra descent read, a compaction firing earlier,
  ...), not noise.

Spans present only in the baseline (phase disappeared) or only in the
candidate (phase appeared) are reported; they fail the gate only when
they carry bytes, since an empty span is formatting, not I/O.

Exit codes: ``0`` pass, ``1`` regression, ``2`` usage/bad input.

Usage::

    PYTHONPATH=src python -m repro explain lsm --json --output baseline.json
    # ... hack on the LSM ...
    PYTHONPATH=src python -m repro explain lsm --json --output candidate.json
    PYTHONPATH=src python tools/bench_gate.py baseline.json candidate.json

The benchmark suite runs this gate automatically when the
``REPRO_BENCH_GATE`` environment variable names a baseline directory
(see ``benchmarks/test_bench_tracing.py``).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Tuple

#: Byte counters compared span-by-span.  All deterministic.
BYTE_FIELDS = ("read_bytes", "write_bytes", "ro_bytes", "uo_bytes")


def load_profile(path: str) -> dict:
    """Load one ``repro explain --json`` payload, validating its shape."""
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as error:
        raise SystemExit(f"cannot read profile {path!r}: {error}")
    for field in ("spans", "ops_per_sec", "method"):
        if field not in payload:
            raise SystemExit(
                f"{path!r} is not an explain profile: missing {field!r}"
            )
    return payload


def _span_map(payload: dict) -> Dict[str, dict]:
    return {row["path"]: row for row in payload["spans"]}


def diff_profiles(
    baseline: dict,
    candidate: dict,
    *,
    byte_threshold: float,
    ops_threshold: float,
) -> Tuple[List[str], List[str]]:
    """Compare two profiles; returns (regressions, notes).

    ``regressions`` fail the gate; ``notes`` are informational.
    """
    regressions: List[str] = []
    notes: List[str] = []

    base_ops = float(baseline.get("ops_per_sec", 0.0))
    cand_ops = float(candidate.get("ops_per_sec", 0.0))
    if base_ops > 0:
        drop = (base_ops - cand_ops) / base_ops
        if drop > ops_threshold:
            regressions.append(
                f"throughput: {cand_ops:,.0f} ops/sec is "
                f"{drop:.1%} below baseline {base_ops:,.0f} "
                f"(threshold {ops_threshold:.0%})"
            )
        else:
            notes.append(
                f"throughput: {cand_ops:,.0f} vs {base_ops:,.0f} ops/sec "
                f"({-drop:+.1%})"
            )

    base_spans = _span_map(baseline)
    cand_spans = _span_map(candidate)
    for path in sorted(set(base_spans) | set(cand_spans)):
        base_row = base_spans.get(path)
        cand_row = cand_spans.get(path)
        if base_row is None:
            grew = sum(int(cand_row.get(f, 0)) for f in BYTE_FIELDS)
            message = f"span {path!r} appeared with {grew} attributed bytes"
            (regressions if grew else notes).append(message)
            continue
        if cand_row is None:
            lost = sum(int(base_row.get(f, 0)) for f in BYTE_FIELDS)
            message = f"span {path!r} disappeared ({lost} baseline bytes)"
            (regressions if lost else notes).append(message)
            continue
        for field in BYTE_FIELDS:
            base_value = int(base_row.get(field, 0))
            cand_value = int(cand_row.get(field, 0))
            if cand_value == base_value:
                continue
            if base_value == 0:
                regressions.append(
                    f"span {path!r}: {field} grew 0 -> {cand_value}"
                )
                continue
            growth = (cand_value - base_value) / base_value
            if growth > byte_threshold:
                regressions.append(
                    f"span {path!r}: {field} grew {growth:+.1%} "
                    f"({base_value} -> {cand_value}, "
                    f"threshold {byte_threshold:.0%})"
                )
            else:
                notes.append(
                    f"span {path!r}: {field} changed {growth:+.1%} "
                    f"({base_value} -> {cand_value})"
                )
    return regressions, notes


#: Device throughput fields compared entry-to-entry along a trajectory.
TRAJECTORY_FIELDS = (
    "read_ops_per_sec",
    "write_ops_per_sec",
    "read_many_ops_per_sec",
    "write_many_ops_per_sec",
)


def sweep_speedup_floor(min_sweep_speedup: float, cpus: int, jobs: int) -> float:
    """Absolute ``parallel_speedup`` floor, scaled to the recording box.

    The full ``min_sweep_speedup`` bar applies when the entry was
    recorded with at least as many usable cores as workers.  On a
    core-starved box (e.g. a 1-CPU container) wall-clock speedup is
    physically capped at ``min(cpus, jobs)``, so the floor degrades to
    85% of that ceiling — on one core that means "parallel dispatch may
    cost at most ~15% over serial", which is exactly the scheduler
    overhead this gate exists to bound.
    """
    ceiling = max(1, min(int(cpus), int(jobs)))
    return min(min_sweep_speedup, 0.85 * ceiling)


def check_trajectory(
    data: dict,
    *,
    min_batched_multiple: float,
    ops_threshold: float,
    min_sweep_speedup: float = 2.5,
    sweep_tolerance: float = 0.05,
) -> Tuple[List[str], List[str]]:
    """Gate a ``BENCH_hotpath.json`` trajectory; returns (regressions, notes).

    Three checks over the committed per-PR entries (pure arithmetic — the
    numbers were measured when the entry was recorded, so this is
    deterministic wherever the tests run):

    * the newest entry may not drop any device throughput field by more
      than ``ops_threshold`` relative to the previous entry;
    * the newest entry's batched ``read_many``/``write_many`` throughput
      must hold ``min_batched_multiple`` x the *first* entry's per-op
      numbers — the bar the batched pipeline was introduced to clear;
    * when the newest entry carries a ``sweep`` section, its
      ``parallel_speedup`` must beat the previous sweep-bearing entry
      (within ``sweep_tolerance``) and clear the CPU-aware absolute
      floor from :func:`sweep_speedup_floor` — so a sweep-scheduler
      regression like the 0.77x that motivated the persistent pool can
      never land silently again.  Entries without sweep data skip these
      checks with a note;
    * when the newest entry carries a ``live`` section (recorded since
      ``repro.obs.live`` landed), its disabled-path overhead must be
      within the budget the entry was recorded against
      (``within_budget`` — the ``if live is not None`` guards in the
      measurement loop staying near-free).  Older entries skip the
      check with a note.
    """
    regressions: List[str] = []
    notes: List[str] = []
    entries = data.get("entries")
    if not isinstance(entries, list) or not entries:
        raise SystemExit("trajectory has no entries")
    for index, entry in enumerate(entries):
        device = entry.get("device")
        if not isinstance(device, dict):
            raise SystemExit(f"trajectory entry {index} has no device section")
        for field in ("read_ops_per_sec", "write_ops_per_sec"):
            if not float(device.get(field, 0.0)) > 0:
                raise SystemExit(
                    f"trajectory entry {index} "
                    f"({entry.get('label', '?')!r}) missing {field}"
                )
    latest = entries[-1]
    label = latest.get("label", "latest")
    device = latest["device"]
    if len(entries) >= 2:
        previous = entries[-2]["device"]
        for field in TRAJECTORY_FIELDS:
            base = float(previous.get(field, 0.0))
            cand = float(device.get(field, 0.0))
            if base <= 0:
                continue
            drop = (base - cand) / base
            message = (
                f"trajectory {label!r}: {field} {cand:,.0f} vs "
                f"previous {base:,.0f} ({-drop:+.1%})"
            )
            if drop > ops_threshold:
                regressions.append(
                    f"{message} (threshold {ops_threshold:.0%})"
                )
            else:
                notes.append(message)
    if min_batched_multiple > 0:
        first = entries[0]["device"]
        for per_op, batched in (
            ("read_ops_per_sec", "read_many_ops_per_sec"),
            ("write_ops_per_sec", "write_many_ops_per_sec"),
        ):
            anchor = float(first[per_op])
            cand = float(device.get(batched, 0.0))
            required = min_batched_multiple * anchor
            if cand < required:
                regressions.append(
                    f"trajectory {label!r}: {batched} {cand:,.0f} below "
                    f"{min_batched_multiple:.1f}x the first entry's "
                    f"{per_op} ({anchor:,.0f} -> requires {required:,.0f})"
                )
            else:
                notes.append(
                    f"trajectory {label!r}: {batched} {cand:,.0f} is "
                    f"{cand / anchor:.2f}x the first entry's {per_op}"
                )
    sweep = latest.get("sweep")
    if isinstance(sweep, dict) and float(sweep.get("parallel_speedup", 0)) > 0:
        speedup = float(sweep["parallel_speedup"])
        jobs = int(sweep.get("jobs", 1))
        cpus = int(sweep.get("cpus", jobs))
        if min_sweep_speedup > 0:
            floor = sweep_speedup_floor(min_sweep_speedup, cpus, jobs)
            message = (
                f"trajectory {label!r}: sweep speedup {speedup:.2f}x at "
                f"jobs={jobs} on {cpus} cpu(s), floor {floor:.2f}x"
            )
            if speedup < floor:
                regressions.append(message)
            else:
                notes.append(message)
        previous_sweeps = [
            float(entry["sweep"]["parallel_speedup"])
            for entry in entries[:-1]
            if isinstance(entry.get("sweep"), dict)
            and float(entry["sweep"].get("parallel_speedup", 0)) > 0
        ]
        if previous_sweeps:
            base = previous_sweeps[-1]
            required = base * (1.0 - sweep_tolerance)
            message = (
                f"trajectory {label!r}: sweep speedup {speedup:.2f}x vs "
                f"previous {base:.2f}x"
            )
            if speedup < required:
                regressions.append(
                    f"{message} (requires {required:.2f}x at "
                    f"{sweep_tolerance:.0%} tolerance)"
                )
            else:
                notes.append(message)
    else:
        notes.append(
            f"trajectory {label!r}: no sweep section, sweep checks skipped"
        )
    live = latest.get("live")
    if isinstance(live, dict):
        fraction = float(live.get("disabled_overhead_fraction", 0.0))
        budget = float(live.get("disabled_budget", 0.0))
        message = (
            f"trajectory {label!r}: disabled live-observability path costs "
            f"{fraction:.3%} of the hot loop (budget {budget:.0%})"
        )
        if not live.get("within_budget", False):
            regressions.append(message)
        else:
            notes.append(message)
    else:
        notes.append(
            f"trajectory {label!r}: no live section, live-budget check "
            f"skipped (entry predates repro.obs.live)"
        )
    return regressions, notes


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="span-profile perf-regression gate"
    )
    parser.add_argument("baseline", help="explain --json profile (committed), "
                        "or the trajectory file with --trajectory")
    parser.add_argument("candidate", nargs="?", default=None,
                        help="explain --json profile (fresh)")
    parser.add_argument(
        "--trajectory",
        action="store_true",
        help="treat BASELINE as a BENCH_hotpath.json trajectory and gate "
        "its newest entry (no candidate profile)",
    )
    parser.add_argument(
        "--byte-threshold",
        type=float,
        default=0.02,
        help="tolerated relative growth of any span byte counter",
    )
    parser.add_argument(
        "--ops-threshold",
        type=float,
        default=0.30,
        help="tolerated relative ops/sec drop (wall-clock, noisy)",
    )
    parser.add_argument(
        "--min-batched-multiple",
        type=float,
        default=2.0,
        help="trajectory mode: required batched/first-per-op multiple "
        "(0 disables the check)",
    )
    parser.add_argument(
        "--min-sweep-speedup",
        type=float,
        default=2.5,
        help="trajectory mode: absolute sweep parallel_speedup floor, "
        "scaled down automatically on CPU-starved recording boxes "
        "(0 disables the check)",
    )
    parser.add_argument(
        "--sweep-tolerance",
        type=float,
        default=0.05,
        help="trajectory mode: tolerated relative sweep speedup drop vs "
        "the previous sweep-bearing entry",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="only print regressions"
    )
    args = parser.parse_args(argv)
    if (args.byte_threshold < 0 or args.ops_threshold < 0
            or args.min_sweep_speedup < 0 or args.sweep_tolerance < 0):
        parser.error("thresholds must be non-negative")

    if args.trajectory:
        try:
            with open(args.baseline) as handle:
                data = json.load(handle)
        except (OSError, ValueError) as error:
            raise SystemExit(
                f"cannot read trajectory {args.baseline!r}: {error}"
            )
        regressions, notes = check_trajectory(
            data,
            min_batched_multiple=args.min_batched_multiple,
            ops_threshold=args.ops_threshold,
            min_sweep_speedup=args.min_sweep_speedup,
            sweep_tolerance=args.sweep_tolerance,
        )
        if not args.quiet:
            for note in notes:
                print(f"  ok: {note}")
        for regression in regressions:
            print(f"REGRESSION: {regression}")
        if regressions:
            print(
                f"bench_gate: FAIL ({len(regressions)} regression(s) in "
                f"{args.baseline})"
            )
            return 1
        print(
            f"bench_gate: pass (trajectory {args.baseline}, "
            f"{len(data['entries'])} entries)"
        )
        return 0
    if args.candidate is None:
        parser.error("candidate profile required unless --trajectory")

    baseline = load_profile(args.baseline)
    candidate = load_profile(args.candidate)
    if baseline.get("method") != candidate.get("method"):
        print(
            f"bench_gate: comparing different methods "
            f"({baseline.get('method')!r} vs {candidate.get('method')!r})",
            file=sys.stderr,
        )
        return 2

    regressions, notes = diff_profiles(
        baseline,
        candidate,
        byte_threshold=args.byte_threshold,
        ops_threshold=args.ops_threshold,
    )
    if not args.quiet:
        for note in notes:
            print(f"  ok: {note}")
    for regression in regressions:
        print(f"REGRESSION: {regression}")
    if regressions:
        print(
            f"bench_gate: FAIL ({len(regressions)} regression(s) vs "
            f"{args.baseline})"
        )
        return 1
    print(f"bench_gate: pass ({baseline.get('method')} vs {args.baseline})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
