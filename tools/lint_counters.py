"""Lint: DeviceCounters may only be mutated inside ``repro/storage``.

The RUM measurements are ratios of these counters, so the set of code
locations that can change them must stay auditable: exactly the storage
substrate.  This checker walks the AST of every module under
``src/repro`` outside ``storage/`` and flags any assignment or augmented
assignment whose target is a counter field reached through a
``counters`` attribute or variable (``device.counters.reads += 1``,
``counters.simulated_time = 0``, ...).

Run from the repository root::

    python tools/lint_counters.py

Exit status 1 and one line per violation when any are found;
``tests/unit/test_lint_counters.py`` runs the same check in CI.
"""

from __future__ import annotations

import ast
import os
import sys
from typing import List, Tuple

#: The fields of repro.storage.device.DeviceCounters.
COUNTER_FIELDS = {
    "reads",
    "writes",
    "read_bytes",
    "write_bytes",
    "allocations",
    "frees",
    "simulated_time",
}

#: Subtree whose modules own the counters and may mutate them.
ALLOWED_SUBPACKAGE = os.path.join("repro", "storage")

Violation = Tuple[str, int, str]


def _is_counter_target(node: ast.expr) -> bool:
    """True for ``<...>.counters.<field>`` or ``counters.<field>`` targets."""
    if not isinstance(node, ast.Attribute) or node.attr not in COUNTER_FIELDS:
        return False
    owner = node.value
    if isinstance(owner, ast.Attribute):
        return owner.attr == "counters"
    if isinstance(owner, ast.Name):
        return owner.id == "counters"
    return False


def violations_in_source(source: str, path: str) -> List[Violation]:
    """All counter-mutation sites in one module's source text."""
    found: List[Violation] = []
    tree = ast.parse(source, filename=path)
    for node in ast.walk(tree):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            elements = (
                target.elts if isinstance(target, (ast.Tuple, ast.List)) else [target]
            )
            for element in elements:
                if _is_counter_target(element):
                    found.append(
                        (path, element.lineno, ast.unparse(element))
                    )
    return found


def check_tree(src_root: str) -> List[Violation]:
    """Counter mutations in every repro module outside the storage package."""
    found: List[Violation] = []
    for dirpath, _dirnames, filenames in sorted(os.walk(src_root)):
        if ALLOWED_SUBPACKAGE in os.path.normpath(dirpath):
            continue
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            with open(path) as handle:
                found.extend(violations_in_source(handle.read(), path))
    return found


def main() -> int:
    """Check the repository's ``src`` tree; print violations."""
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    violations = check_tree(os.path.join(root, "src"))
    for path, line, target in violations:
        print(f"{path}:{line}: DeviceCounters mutated outside storage/: {target}")
    if violations:
        return 1
    print("ok: DeviceCounters only mutated inside repro/storage")
    return 0


if __name__ == "__main__":
    sys.exit(main())
