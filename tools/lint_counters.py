"""Lint: device internals may only be touched inside ``repro/storage``.

The RUM measurements are ratios of device counters, so the set of code
locations that can change them must stay auditable: exactly the storage
substrate.  This checker walks the AST of every module under
``src/repro`` outside ``storage/`` and flags:

* any assignment or augmented assignment whose target is a counter
  field reached through a ``counters`` attribute or variable
  (``device.counters.reads += 1``, ``counters.simulated_time = 0``, ...);
* any access — read *or* write — to a :class:`SimulatedDevice` private
  attribute through a ``device`` or ``backing`` expression
  (``self.device._blocks``, ``backing._used_total``, ...).  Methods and
  audits must go through the public no-I/O surface (``peek``,
  ``kind_of``, ``used_bytes_of``, ``iter_block_ids``, ...) so the block
  table stays encapsulated;
* any access to a :class:`~repro.storage.pager.BufferPool` frame table
  (``._frames``) outside ``repro/storage/pager.py`` itself — this rule
  applies to *every* module, including the rest of ``storage/``.  The
  hierarchy once reached into ``pool._frames`` and hand-incremented the
  pool's stats, duplicating (and drifting from) the pool's own hit/miss
  logic; callers must use the public surface (``contains``, ``peek``,
  ``iter_frames``, ``iter_dirty``, ``fill_clean``, ...);
* any direct ``Tracer.emit`` call outside ``repro/obs`` and
  ``repro/storage`` — the event vocabulary (and the span stamping that
  rides on it) must stay auditable in one place.  Code elsewhere reports
  through a sanctioned helper
  (:func:`repro.obs.tracer.emit_audit_events`,
  :func:`repro.obs.tracer.emit_fault_event`);
* any per-op device bookkeeping (``snapshot``, ``stats_since``, the
  derived ``counters`` property) inside a loop of a batched entry point
  (``*_many`` / ``apply_batch``) outside ``repro/storage`` — batched
  paths exist to amortize exactly that work, so it must happen per
  batch, before or after the loop;
* any direct device mutation (``write``, ``write_many``, ``allocate``,
  ``free``) inside ``repro/serve`` outside ``wal.py`` — the serving
  tier's durability story depends on every durable byte flowing through
  the write-ahead log or the access method's own apply path; a server
  module scribbling on the device directly would bypass both the redo
  log and the RUM accounting the method layer owns.  The rule also
  covers the log's ``store`` / ``hierarchy`` seam names, so a serve
  module cannot dodge it by renaming its handle;
* any mutation through a ``device`` / ``backing`` owner inside
  ``wal.py`` itself — the log's one sanctioned mutation surface is the
  :class:`~repro.storage.store.LogStore` seam (``self.store``), which
  is what lets the same WAL run over a bare device or a whole chained
  hierarchy; reaching around the seam to a raw device would write log
  blocks that ``sync_through`` (the modeled fsync) never forces down;
* any mutation of the live observability substrate
  (:class:`~repro.obs.live.LiveRegistry` /
  :class:`~repro.obs.live.WindowedRUM` — ``count``, ``gauge``,
  ``observe``, ``observe_op``, ...) outside ``repro/obs`` and the
  sanctioned taps (the measurement loop in ``core/rum.py``, the
  workload runner, and the serving tier's ``server.py``/``bench.py``).
  The per-window conservation contract only holds if every sample
  flows through those few audited emit sites; a stray
  ``live.count(...)`` elsewhere would silently skew window sums away
  from the whole-run totals.

Run from the repository root::

    python tools/lint_counters.py

Exit status 1 and one line per violation when any are found;
``tests/unit/test_lint_counters.py`` runs the same check in CI.
"""

from __future__ import annotations

import ast
import os
import sys
from typing import List, Tuple

#: The fields of repro.storage.device.DeviceCounters.
COUNTER_FIELDS = {
    "reads",
    "writes",
    "read_bytes",
    "write_bytes",
    "allocations",
    "frees",
    "simulated_time",
}

#: Private attributes of repro.storage.device.SimulatedDevice: the block
#: table, the allocator cursor, and the raw per-category tallies the
#: ``counters`` property is derived from.
DEVICE_PRIVATE_FIELDS = {
    "_blocks",
    "_next_id",
    "_used_total",
    "_seq_read_id",
    "_seq_write_id",
    "_seq_reads",
    "_rand_reads",
    "_seq_writes",
    "_rand_writes",
    "_allocations",
    "_frees",
    "_time_base",
}

#: Variable / attribute names that conventionally hold a device in this
#: codebase (``self.device``, ``device``, and wrapper ``backing``).
DEVICE_OWNER_NAMES = {"device", "backing"}

#: Private attributes of repro.storage.pager.BufferPool: the frame
#: table.  Off-limits everywhere except pager.py itself.
POOL_PRIVATE_FIELDS = {"_frames"}

#: The one module that owns the buffer-pool frame table.
POOL_MODULE = os.path.join("repro", "storage", "pager.py")

#: Subtree whose modules own the counters and may mutate them.
ALLOWED_SUBPACKAGE = os.path.join("repro", "storage")

#: Device bookkeeping that a batched entry point must perform per
#: *batch*, not per operation: a ``snapshot``/``stats_since`` pair or a
#: ``counters`` materialization inside the loop of a ``*_many`` /
#: ``apply_batch`` function re-introduces exactly the per-op overhead
#: the batched surface exists to amortize (``counters`` is a derived
#: property on the device — every touch builds a fresh dataclass).
PER_OP_BOOKKEEPING = {"snapshot", "stats_since", "counters"}

#: Function names treated as batched entry points for the rule above.
BATCH_FUNCTION_NAMES = {"apply_batch"}
BATCH_FUNCTION_SUFFIX = "_many"

#: Subtrees whose modules may call ``Tracer.emit`` directly: the
#: observability layer itself and the storage substrate's emission
#: sites.  Everything else must go through a sanctioned helper
#: (``emit_audit_events``, ``emit_fault_event``) so the set of event
#: vocabularies stays auditable in one module.
EMIT_ALLOWED_SUBPACKAGES = (
    os.path.join("repro", "obs"),
    os.path.join("repro", "storage"),
)

#: Device mutation surface the serving tier may not call directly: all
#: durable serving-tier state flows through the WAL or the method's
#: apply path, never straight onto the device.
SERVE_DEVICE_WRITE_CALLS = {"write", "write_many", "allocate", "free"}

#: Owner names of the log's sanctioned block-store seam.  Outside
#: ``wal.py`` these are just as off-limits for mutation as a raw
#: device; inside ``wal.py``, ``store`` is the one allowed owner.
STORE_OWNER_NAMES = {"store", "hierarchy"}

#: The serving-tier subtree the rule above applies to, and the one
#: module inside it that owns the log blocks and may mutate the device.
SERVE_SUBPACKAGE = os.path.join("repro", "serve")
SERVE_WAL_MODULE = os.path.join("repro", "serve", "wal.py")

#: Mutation surface of the live observability substrate
#: (repro.obs.live.LiveRegistry / WindowedRUM).  Reads — ``snapshot``,
#: ``frames``, ``totals``, ``counter_total`` — are fine anywhere.
LIVE_MUTATION_METHODS = {
    "count",
    "gauge",
    "observe",
    "observe_op",
    "observe_flush",
    "observe_space",
    "consume_event",
    "advance",
}

#: Owner-name markers that make a call receiver live-registry-ish in
#: this codebase: ``live``, ``self.live``, ``registry``, ``windowed``.
LIVE_OWNER_MARKERS = ("live", "registry", "windowed")

#: The live substrate's home, where mutation is always sanctioned.
LIVE_ALLOWED_SUBPACKAGE = os.path.join("repro", "obs")

#: The audited tap sites outside repro/obs: the measurement loop, the
#: workload runner that threads ``live`` through, and the serving
#: tier's emit sites.
LIVE_TAP_MODULES = (
    os.path.join("repro", "core", "rum.py"),
    os.path.join("repro", "workloads", "runner.py"),
    os.path.join("repro", "serve", "server.py"),
    os.path.join("repro", "serve", "bench.py"),
)

Violation = Tuple[str, int, str]


def _is_counter_target(node: ast.expr) -> bool:
    """True for ``<...>.counters.<field>`` or ``counters.<field>`` targets."""
    if not isinstance(node, ast.Attribute) or node.attr not in COUNTER_FIELDS:
        return False
    owner = node.value
    if isinstance(owner, ast.Attribute):
        return owner.attr == "counters"
    if isinstance(owner, ast.Name):
        return owner.id == "counters"
    return False


def _is_private_device_access(node: ast.expr) -> bool:
    """True for ``<...>.device._blocks``-style expressions: a device
    private attribute reached through a ``device``/``backing`` owner."""
    if not isinstance(node, ast.Attribute) or node.attr not in DEVICE_PRIVATE_FIELDS:
        return False
    owner = node.value
    if isinstance(owner, ast.Attribute):
        return owner.attr in DEVICE_OWNER_NAMES
    if isinstance(owner, ast.Name):
        return owner.id in DEVICE_OWNER_NAMES
    return False


def _is_tracer_emit_call(node: ast.expr) -> bool:
    """True for ``<tracer-ish>.emit(...)`` call expressions.

    A tracer-ish owner is any name or attribute whose (lowercased) last
    component mentions ``tracer`` — ``tracer.emit``, ``self.tracer.emit``,
    ``self._tracer.emit``, ``NULL_TRACER.emit``, ...
    """
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if not isinstance(func, ast.Attribute) or func.attr != "emit":
        return False
    owner = func.value
    if isinstance(owner, ast.Attribute):
        return "tracer" in owner.attr.lower()
    if isinstance(owner, ast.Name):
        return "tracer" in owner.id.lower()
    return False


def _is_device_write_call(node: ast.expr, owner_names=None) -> bool:
    """True for ``<device-ish>.write(...)``-style mutation calls.

    A device-ish owner is a name or attribute in ``owner_names``
    (default: ``device`` / ``backing``) — ``self.device.allocate(...)``,
    ``device.write(...)``, ``self.store.free(...)``.
    """
    if owner_names is None:
        owner_names = DEVICE_OWNER_NAMES
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if not isinstance(func, ast.Attribute):
        return False
    if func.attr not in SERVE_DEVICE_WRITE_CALLS:
        return False
    owner = func.value
    if isinstance(owner, ast.Attribute):
        return owner.attr in owner_names
    if isinstance(owner, ast.Name):
        return owner.id in owner_names
    return False


def _is_live_mutation_call(node: ast.expr) -> bool:
    """True for ``<live-ish>.count(...)``-style mutation calls.

    A live-ish owner is a name or attribute whose (lowercased) last
    component mentions a :data:`LIVE_OWNER_MARKERS` word —
    ``live.observe_op``, ``self.live.count``, ``registry.gauge``, ...
    """
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if not isinstance(func, ast.Attribute):
        return False
    if func.attr not in LIVE_MUTATION_METHODS:
        return False
    owner = func.value
    if isinstance(owner, ast.Attribute):
        name = owner.attr
    elif isinstance(owner, ast.Name):
        name = owner.id
    else:
        return False
    lowered = name.lower()
    return any(marker in lowered for marker in LIVE_OWNER_MARKERS)


def violations_in_source(
    source: str, path: str, *, frames_only: bool = False,
    check_emit: bool = False, check_serve_writes: bool = False,
    check_serve_wal: bool = False, check_live: bool = False,
) -> List[Violation]:
    """All counter-mutation and private-access sites in one module.

    ``frames_only`` restricts the check to the frame-table rule — used
    for modules inside ``repro/storage`` (which own the device counters
    but still may not reach into ``BufferPool._frames``).  ``check_emit``
    additionally flags direct ``Tracer.emit`` calls — enabled for
    modules outside :data:`EMIT_ALLOWED_SUBPACKAGES`.
    ``check_serve_writes`` flags direct device *and* store-seam mutation
    calls — enabled for ``repro/serve`` modules other than ``wal.py``.
    ``check_serve_wal`` flags raw ``device``/``backing`` mutation only —
    enabled for ``wal.py`` itself, whose sanctioned surface is the
    ``store`` seam.  ``check_live`` flags live-registry mutation calls —
    enabled outside ``repro/obs`` and the :data:`LIVE_TAP_MODULES`.
    """
    found: List[Violation] = []
    tree = ast.parse(source, filename=path)
    for node in ast.walk(tree):
        if check_emit and _is_tracer_emit_call(node):
            found.append((path, node.lineno, ast.unparse(node.func)))
        if check_live and _is_live_mutation_call(node):
            found.append(
                (path, node.lineno, f"live-mutate {ast.unparse(node.func)}")
            )
        if check_serve_writes and _is_device_write_call(
            node, DEVICE_OWNER_NAMES | STORE_OWNER_NAMES
        ):
            found.append(
                (path, node.lineno, f"serve-write {ast.unparse(node.func)}")
            )
        if check_serve_wal and _is_device_write_call(node):
            found.append(
                (path, node.lineno, f"wal-raw-write {ast.unparse(node.func)}")
            )
        if not frames_only:
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                elements = (
                    target.elts
                    if isinstance(target, (ast.Tuple, ast.List))
                    else [target]
                )
                for element in elements:
                    if _is_counter_target(element):
                        found.append(
                            (path, element.lineno, ast.unparse(element))
                        )
            # Private device attributes are off-limits in any expression
            # position, not just assignment targets.
            if isinstance(node, ast.Attribute) and _is_private_device_access(node):
                found.append((path, node.lineno, ast.unparse(node)))
        # The buffer-pool frame table is off-limits everywhere (the pool
        # module itself is excluded by the caller).
        if isinstance(node, ast.Attribute) and node.attr in POOL_PRIVATE_FIELDS:
            found.append((path, node.lineno, ast.unparse(node)))
    if not frames_only:
        found.extend(_batch_loop_bookkeeping(tree, path))
    return found


def _batch_loop_bookkeeping(tree: ast.AST, path: str) -> List[Violation]:
    """Per-op device bookkeeping inside the loops of batched entry points.

    Flags any ``snapshot`` / ``stats_since`` / ``counters`` attribute
    reached inside a ``for``/``while`` loop of a function named
    ``*_many`` or ``apply_batch``; such bookkeeping belongs before or
    after the loop (per batch), never per iteration.
    """
    found: List[Violation] = []
    seen = set()
    for func in ast.walk(tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        name = func.name
        if not (
            name.endswith(BATCH_FUNCTION_SUFFIX)
            or name in BATCH_FUNCTION_NAMES
        ):
            continue
        for loop in ast.walk(func):
            if not isinstance(loop, (ast.For, ast.While)):
                continue
            for sub in ast.walk(loop):
                if (
                    isinstance(sub, ast.Attribute)
                    and sub.attr in PER_OP_BOOKKEEPING
                ):
                    key = (sub.lineno, sub.col_offset)
                    if key in seen:
                        continue
                    seen.add(key)
                    found.append(
                        (path, sub.lineno, f"batch-loop {ast.unparse(sub)}")
                    )
    return found


def check_tree(src_root: str) -> List[Violation]:
    """Counter mutations in every repro module outside the storage
    package, plus frame-table reaches anywhere outside pager.py."""
    found: List[Violation] = []
    for dirpath, _dirnames, filenames in sorted(os.walk(src_root)):
        normalized = os.path.normpath(dirpath)
        in_storage = ALLOWED_SUBPACKAGE in normalized
        in_serve = SERVE_SUBPACKAGE in normalized
        emit_allowed = any(
            subpackage in normalized
            for subpackage in EMIT_ALLOWED_SUBPACKAGES
        )
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            normalized_path = os.path.normpath(path)
            if normalized_path.endswith(POOL_MODULE):
                continue
            is_wal = normalized_path.endswith(SERVE_WAL_MODULE)
            live_sanctioned = (
                LIVE_ALLOWED_SUBPACKAGE in normalized
                or any(
                    normalized_path.endswith(tap)
                    for tap in LIVE_TAP_MODULES
                )
            )
            with open(path) as handle:
                found.extend(
                    violations_in_source(
                        handle.read(), path, frames_only=in_storage,
                        check_emit=not emit_allowed,
                        check_serve_writes=in_serve and not is_wal,
                        check_serve_wal=in_serve and is_wal,
                        check_live=not live_sanctioned,
                    )
                )
    return found


def main() -> int:
    """Check the repository's ``src`` tree; print violations."""
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    violations = check_tree(os.path.join(root, "src"))
    for path, line, target in violations:
        field = target.rpartition(".")[2]
        if target.startswith("batch-loop "):
            message = (
                "per-op device bookkeeping inside a batched loop "
                "(hoist snapshot/stats_since/counters out of the loop)"
            )
        elif target.startswith("serve-write "):
            message = (
                "direct device/store mutation in repro/serve outside "
                "wal.py (durable state flows through the WAL or the "
                "method)"
            )
        elif target.startswith("wal-raw-write "):
            message = (
                "raw device mutation inside wal.py (the log's sanctioned "
                "surface is the LogStore seam, self.store)"
            )
        elif target.startswith("live-mutate "):
            message = (
                "live-registry mutation outside repro/obs and the "
                "sanctioned taps (core/rum.py, workloads/runner.py, "
                "serve/server.py, serve/bench.py) — a stray sample "
                "breaks the per-window conservation contract"
            )
        elif field == "emit":
            message = (
                "direct Tracer.emit outside repro/obs and repro/storage "
                "(use emit_audit_events / emit_fault_event)"
            )
        elif field in POOL_PRIVATE_FIELDS:
            message = "BufferPool frame table accessed outside pager.py"
        elif field in DEVICE_PRIVATE_FIELDS:
            message = "device-private attribute accessed outside storage/"
        else:
            message = "DeviceCounters mutated outside storage/"
        print(f"{path}:{line}: {message}: {target}")
    if violations:
        return 1
    print(
        "ok: device internals only touched inside repro/storage, "
        "frame table only inside pager.py, Tracer.emit only inside "
        "repro/obs and repro/storage, no per-op bookkeeping in "
        "batched loops, serve-tier device/store mutation only inside "
        "wal.py, wal.py only through its LogStore seam, and live "
        "registries mutated only at the sanctioned emit sites"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
