"""Hot-path microbenchmark: simulator ops/sec, current vs pre-optimization.

Measures the two operations every experiment in this repository spends
its time on — ``SimulatedDevice.read`` and ``SimulatedDevice.write`` —
and reports ops/sec for the current implementation next to a *faithful
replica of the pre-optimization device* compiled into this file (same
dataclass counters, per-block counters, attribute-chased cost model and
``Optional``-based sequential tracking the device shipped with before
the slimming).  Both variants run in the same process, interleaved
best-of-``--trials``, so machine noise hits them equally and the
speedup column is meaningful on a busy box.

Also times a small sweep grid through :class:`repro.exec.SweepEngine`
serially and across a ``jobs`` sweep (1/2/4 workers, each on a warmed
persistent pool) to record the parallel fan-out trend, and the
span system's overhead (``repro.obs.spans``): the disabled ``@spanned``
path must stay under :data:`SPAN_DISABLED_BUDGET` (3%) of a
representative workload's per-op cost, and the enabled slowdown is
recorded alongside.  The live observability substrate
(``repro.obs.live``) gets the same treatment: its disabled path — the
``if live is not None`` guards in the measurement loop — must stay
under :data:`LIVE_DISABLED_BUDGET` (2%) per op.

Usage::

    PYTHONPATH=src python tools/bench_hotpath.py             # full run
    PYTHONPATH=src python tools/bench_hotpath.py --smoke     # CI seconds
    PYTHONPATH=src python tools/bench_hotpath.py --output BENCH_hotpath.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from dataclasses import dataclass, replace
from typing import Dict, Optional

from repro.storage.device import CostModel, SimulatedDevice


# ----------------------------------------------------------------------
# Faithful replica of the pre-optimization hot path (the baseline).
# Kept verbatim-equivalent so the reported speedup measures the actual
# code change, not a strawman.
# ----------------------------------------------------------------------
@dataclass
class _LegacyBlock:
    block_id: int
    payload: object = None
    used_bytes: int = 0
    kind: str = "data"
    writes: int = 0
    reads: int = 0


@dataclass
class _LegacyCounters:
    reads: int = 0
    writes: int = 0
    read_bytes: int = 0
    write_bytes: int = 0
    allocations: int = 0
    frees: int = 0
    simulated_time: float = 0.0

    def copy(self) -> "_LegacyCounters":
        return replace(self)


class _LegacyTracer:
    enabled = False


class _LegacyDevice:
    """The device's read/write path as it was before the optimization."""

    def __init__(self, block_bytes: int, cost_model: Optional[CostModel] = None):
        self.block_bytes = block_bytes
        self.cost_model = cost_model or CostModel.flash()
        self.name = "legacy"
        self.counters = _LegacyCounters()
        self.tracer = _LegacyTracer()
        self._blocks: Dict[int, _LegacyBlock] = {}
        self._next_id = 0
        self._last_read_id: Optional[int] = None
        self._last_write_id: Optional[int] = None

    def allocate(self, kind: str = "data") -> int:
        block_id = self._next_id
        self._next_id += 1
        self._blocks[block_id] = _LegacyBlock(block_id=block_id, kind=kind)
        self.counters.allocations += 1
        return block_id

    def read(self, block_id: int) -> object:
        block = self._blocks.get(block_id)
        if block is None:
            raise KeyError(f"read of unallocated block {block_id}")
        sequential = (
            self._last_read_id is not None and block_id == self._last_read_id + 1
        )
        self._last_read_id = block_id
        block.reads += 1
        self.counters.reads += 1
        self.counters.read_bytes += self.block_bytes
        cost = (
            self.cost_model.sequential_read
            if sequential
            else self.cost_model.random_read
        )
        self.counters.simulated_time += cost
        if self.tracer.enabled:  # pragma: no cover - replica keeps the branch
            pass
        return block.payload

    def write(self, block_id: int, payload: object, used_bytes: int = 0) -> None:
        block = self._blocks.get(block_id)
        if block is None:
            raise KeyError(f"write of unallocated block {block_id}")
        if used_bytes < 0 or used_bytes > self.block_bytes:
            raise ValueError(
                f"used_bytes {used_bytes} outside block capacity {self.block_bytes}"
            )
        sequential = (
            self._last_write_id is not None and block_id == self._last_write_id + 1
        )
        self._last_write_id = block_id
        block.payload = payload
        block.used_bytes = used_bytes
        block.writes += 1
        self.counters.writes += 1
        self.counters.write_bytes += self.block_bytes
        cost = (
            self.cost_model.sequential_write
            if sequential
            else self.cost_model.random_write
        )
        self.counters.simulated_time += cost
        if self.tracer.enabled:  # pragma: no cover - replica keeps the branch
            pass
        return None


# ----------------------------------------------------------------------
# Measurement
# ----------------------------------------------------------------------
BLOCK_BYTES = 256
N_BLOCKS = 64


def _prepared(factory):
    device = factory(BLOCK_BYTES)
    for _ in range(N_BLOCKS):
        device.allocate()
    return device


def _read_loop(device, ops: int) -> float:
    """ops/sec over a mixed sequential/random read pattern."""
    read = device.read
    ids = [(7 * i) % N_BLOCKS for i in range(ops)]
    start = time.perf_counter()
    for block_id in ids:
        read(block_id)
    elapsed = time.perf_counter() - start
    return ops / elapsed


def _write_loop(device, ops: int) -> float:
    """ops/sec over writes with varying occupancy (worst case for the
    skip-if-unchanged used_bytes fast path)."""
    write = device.write
    block_bytes = BLOCK_BYTES
    ids = [((7 * i) % N_BLOCKS, (i * 13) % block_bytes) for i in range(ops)]
    start = time.perf_counter()
    for block_id, used in ids:
        write(block_id, None, used)
    elapsed = time.perf_counter() - start
    return ops / elapsed


def _best_of(loop, factory, ops: int, trials: int) -> float:
    return max(loop(_prepared(factory), ops) for _ in range(trials))


#: Device ops handed to read_many/write_many per call in the batched
#: loops — the same order of magnitude a batched measurement loop feeds
#: the device per access-method batch.
BATCH_OPS = 1024


def _read_many_loop(device, ops: int) -> float:
    """ops/sec for the same read pattern through ``read_many``."""
    read_many = device.read_many
    ids = [(7 * i) % N_BLOCKS for i in range(ops)]
    chunks = [ids[start : start + BATCH_OPS] for start in range(0, ops, BATCH_OPS)]
    start = time.perf_counter()
    for chunk in chunks:
        read_many(chunk)
    elapsed = time.perf_counter() - start
    return ops / elapsed


def _write_many_loop(device, ops: int) -> float:
    """ops/sec for the same write pattern through ``write_many``."""
    write_many = device.write_many
    ids = [(7 * i) % N_BLOCKS for i in range(ops)]
    used = [(i * 13) % BLOCK_BYTES for i in range(ops)]
    chunks = [
        (ids[s : s + BATCH_OPS], [None] * len(ids[s : s + BATCH_OPS]),
         used[s : s + BATCH_OPS])
        for s in range(0, ops, BATCH_OPS)
    ]
    start = time.perf_counter()
    for chunk_ids, payloads, chunk_used in chunks:
        write_many(chunk_ids, payloads, chunk_used)
    elapsed = time.perf_counter() - start
    return ops / elapsed


def bench_device(ops: int, trials: int) -> Dict[str, float]:
    """Interleaved current-vs-legacy ops/sec for read and write, plus
    the batched ``read_many``/``write_many`` path (current device only —
    the legacy replica never had a batched surface)."""
    results = {
        "read_ops_per_sec": 0.0,
        "write_ops_per_sec": 0.0,
        "legacy_read_ops_per_sec": 0.0,
        "legacy_write_ops_per_sec": 0.0,
        "read_many_ops_per_sec": 0.0,
        "write_many_ops_per_sec": 0.0,
    }
    # Interleave trials so background noise lands on both variants.
    for _ in range(trials):
        results["legacy_read_ops_per_sec"] = max(
            results["legacy_read_ops_per_sec"],
            _best_of(_read_loop, _LegacyDevice, ops, 1),
        )
        results["read_ops_per_sec"] = max(
            results["read_ops_per_sec"],
            _best_of(_read_loop, SimulatedDevice, ops, 1),
        )
        results["read_many_ops_per_sec"] = max(
            results["read_many_ops_per_sec"],
            _best_of(_read_many_loop, SimulatedDevice, ops, 1),
        )
        results["legacy_write_ops_per_sec"] = max(
            results["legacy_write_ops_per_sec"],
            _best_of(_write_loop, _LegacyDevice, ops, 1),
        )
        results["write_ops_per_sec"] = max(
            results["write_ops_per_sec"],
            _best_of(_write_loop, SimulatedDevice, ops, 1),
        )
        results["write_many_ops_per_sec"] = max(
            results["write_many_ops_per_sec"],
            _best_of(_write_many_loop, SimulatedDevice, ops, 1),
        )
    results["read_speedup"] = (
        results["read_ops_per_sec"] / results["legacy_read_ops_per_sec"]
    )
    results["write_speedup"] = (
        results["write_ops_per_sec"] / results["legacy_write_ops_per_sec"]
    )
    results["read_batch_speedup"] = (
        results["read_many_ops_per_sec"] / results["read_ops_per_sec"]
    )
    results["write_batch_speedup"] = (
        results["write_many_ops_per_sec"] / results["write_ops_per_sec"]
    )
    return results


#: Mixes the end-to-end workload comparison runs.  The batched win
#: scales with homogeneous run length: a read-dominated stream hands
#: ``get_many`` long key lists, while a balanced mix alternates read and
#: write segments every couple of operations and amortizes little.
WORKLOAD_MIXES = {
    "balanced": dict(
        point_queries=0.4, range_queries=0.1,
        inserts=0.3, updates=0.15, deletes=0.05,
    ),
    "read-mostly": dict(
        point_queries=0.85, range_queries=0.05, inserts=0.05, updates=0.05,
    ),
}


def bench_workload(records: int, operations: int, trials: int) -> Dict[str, object]:
    """End-to-end ``run_workload``: per-op loop vs batched pipeline.

    Both paths must produce the identical profile (asserted here — the
    byte-identity contract of the batched pipeline), so the speedup
    column measures pure dispatch/bookkeeping amortization.
    """
    from repro.core.registry import create_method
    from repro.workloads.runner import run_workload
    from repro.workloads.spec import WorkloadSpec

    mixes: Dict[str, Dict[str, float]] = {}
    for mix_name, mix in WORKLOAD_MIXES.items():
        spec = WorkloadSpec(
            **mix, operations=operations, initial_records=records
        )
        profiles = {}

        def run(batch_size: int) -> float:
            best = float("inf")
            for _ in range(max(1, trials - 1)):
                method = create_method(
                    "btree", device=SimulatedDevice(block_bytes=BLOCK_BYTES)
                )
                start = time.perf_counter()
                result = run_workload(method, spec, batch_size=batch_size)
                best = min(best, time.perf_counter() - start)
                profiles[batch_size] = result.profile
            return best

        per_op_seconds = run(batch_size=1)
        batched_seconds = run(batch_size=256)
        assert profiles[1] == profiles[256], (
            f"batched profile diverged from per-op under {mix_name}: "
            f"{profiles[256]} vs {profiles[1]}"
        )
        mixes[mix_name] = {
            "per_op_seconds": per_op_seconds,
            "batched_seconds": batched_seconds,
            "per_op_ops_per_sec": operations / per_op_seconds,
            "batched_ops_per_sec": operations / batched_seconds,
            "batched_speedup": per_op_seconds / batched_seconds,
        }
    return {
        "records": records,
        "operations": operations,
        "mixes": mixes,
    }


#: Hot-loop budget for the *disabled* span path (ISSUE 5 satellite):
#: all `@spanned` sites together may add at most this fraction to a
#: representative workload's per-op cost when span collection is off.
#: Raised from 2% to 3% when the batch-first measurement pipeline landed:
#: the per-op loop's own cost dropped ~25% (vectorized operation
#: generation), shrinking the denominator while the absolute per-site
#: cost (~150ns) stayed flat — and the default batched path bypasses the
#: @spanned wrappers entirely, so the budget now bounds the worst case
#: (forced per-op execution), not the common one.
SPAN_DISABLED_BUDGET = 0.03


def bench_spans(ops: int, trials: int, records: int, operations: int) -> Dict[str, float]:
    """Span-system overhead, disabled vs enabled.

    The disabled path is measured analytically — per-site cost of a
    ``@spanned`` no-op times the measured span sites per workload op,
    divided by the measured per-op time — because the per-site delta
    (~100ns) drowns in run-to-run noise when measured end to end, while
    each factor on its own is stable.  The enabled path is a plain
    wall-clock ratio.
    """
    from repro.core.registry import create_method
    from repro.obs.spans import span_collection, span_entries, spanned
    from repro.workloads.runner import run_workload
    from repro.workloads.spec import WorkloadSpec

    def plain(x):
        return x

    @spanned("bench.site")
    def decorated(x):
        return x

    def best_per_call(func) -> float:
        best = float("inf")
        for _ in range(trials):
            start = time.perf_counter()
            for i in range(ops):
                func(i)
            best = min(best, time.perf_counter() - start)
        return best / ops

    plain_s = best_per_call(plain)
    disabled_s = best_per_call(decorated)
    per_site_disabled_ns = max(0.0, disabled_s - plain_s) * 1e9

    spec = WorkloadSpec(
        point_queries=0.4,
        range_queries=0.1,
        inserts=0.3,
        updates=0.15,
        deletes=0.05,
        operations=operations,
        initial_records=records,
    )

    def run(collect: bool) -> float:
        # batch_size=1 on both sides: active span collection forces the
        # per-op loop anyway, and the batched pipeline bypasses @spanned
        # wrappers outright — only the per-op loop exercises the
        # disabled-span sites this budget constrains.
        best = float("inf")
        for _ in range(max(1, trials - 1)):
            method = create_method("btree", device=SimulatedDevice(block_bytes=BLOCK_BYTES))
            start = time.perf_counter()
            if collect:
                with span_collection():
                    run_workload(method, spec, batch_size=1)
            else:
                run_workload(method, spec, batch_size=1)
            best = min(best, time.perf_counter() - start)
        return best

    disabled_run_s = run(collect=False)
    enabled_run_s = run(collect=True)
    per_op_ns = disabled_run_s / operations * 1e9

    method = create_method("btree", device=SimulatedDevice(block_bytes=BLOCK_BYTES))
    with span_collection():
        entries_before = span_entries()
        run_workload(method, spec)
        sites_per_op = (span_entries() - entries_before) / operations

    disabled_fraction = (
        per_site_disabled_ns * sites_per_op / per_op_ns if per_op_ns else 0.0
    )
    return {
        "per_site_disabled_ns": per_site_disabled_ns,
        "span_sites_per_op": sites_per_op,
        "per_op_ns": per_op_ns,
        "disabled_overhead_fraction": disabled_fraction,
        "disabled_budget": SPAN_DISABLED_BUDGET,
        "within_budget": disabled_fraction < SPAN_DISABLED_BUDGET,
        "enabled_slowdown": enabled_run_s / disabled_run_s if disabled_run_s else 0.0,
    }


#: Hot-loop budget for the *disabled* live-observability path: the
#: ``if live is not None`` guards the measurement loop carries (one per
#: operation, one per space-sampling cadence hit, one per terminal
#: flush) may add at most this fraction to a representative workload's
#: per-op cost when no live window is attached.
LIVE_DISABLED_BUDGET = 0.02

#: Space-sampling cadence of the measurement loop (one extra live guard
#: every this many operations) — mirrors ``repro.core.rum``.
LIVE_SAMPLE_CADENCE = 16


def bench_live(ops: int, trials: int, records: int, operations: int) -> Dict[str, float]:
    """Live-observability overhead, disabled vs enabled.

    Like :func:`bench_spans`, the disabled path is measured analytically:
    the per-site cost of an ``is not None`` guard (measured in isolation,
    where it is stable) times the guard sites per workload op (one per
    operation, one per space-sampling cadence hit, one flush per run —
    known by construction of the measurement loop), divided by the
    measured per-op time.  A wall-clock diff would drown the ~10ns guard
    in run-to-run noise.  The enabled slowdown — a real
    :class:`~repro.obs.live.WindowedRUM` consuming every op — is a plain
    wall-clock ratio.
    """
    from repro.core.registry import create_method
    from repro.obs.live import WindowedRUM
    from repro.workloads.runner import run_workload
    from repro.workloads.spec import WorkloadSpec

    def plain(x, live=None):
        return x

    def guarded(x, live=None):
        if live is not None:
            live.observe_op(x)  # pragma: no cover - never taken
        return x

    def best_per_call(func) -> float:
        best = float("inf")
        for _ in range(trials):
            start = time.perf_counter()
            for i in range(ops):
                func(i)
            best = min(best, time.perf_counter() - start)
        return best / ops

    plain_s = best_per_call(plain)
    guarded_s = best_per_call(guarded)
    per_site_disabled_ns = max(0.0, guarded_s - plain_s) * 1e9

    spec = WorkloadSpec(
        point_queries=0.4,
        range_queries=0.1,
        inserts=0.3,
        updates=0.15,
        deletes=0.05,
        operations=operations,
        initial_records=records,
    )

    def run(live_factory) -> float:
        # batch_size=1 on both sides: an attached live window forces the
        # per-op loop anyway, and the batched pipeline's disabled cost
        # is one guard per *batch* — only the per-op loop exercises the
        # per-op guard sites this budget constrains.
        best = float("inf")
        for _ in range(max(1, trials - 1)):
            method = create_method(
                "btree", device=SimulatedDevice(block_bytes=BLOCK_BYTES)
            )
            live = live_factory()
            start = time.perf_counter()
            run_workload(method, spec, batch_size=1, live=live)
            best = min(best, time.perf_counter() - start)
        return best

    disabled_run_s = run(lambda: None)
    enabled_run_s = run(lambda: WindowedRUM(50.0))
    per_op_ns = disabled_run_s / operations * 1e9

    sites_per_op = 1.0 + 1.0 / LIVE_SAMPLE_CADENCE + 1.0 / operations
    disabled_fraction = (
        per_site_disabled_ns * sites_per_op / per_op_ns if per_op_ns else 0.0
    )
    return {
        "per_site_disabled_ns": per_site_disabled_ns,
        "live_sites_per_op": sites_per_op,
        "per_op_ns": per_op_ns,
        "disabled_overhead_fraction": disabled_fraction,
        "disabled_budget": LIVE_DISABLED_BUDGET,
        "within_budget": disabled_fraction < LIVE_DISABLED_BUDGET,
        "enabled_slowdown": enabled_run_s / disabled_run_s if disabled_run_s else 0.0,
    }


SWEEP_METHODS = (
    "btree", "lsm", "hash-index", "sorted-column",
    "zonemap", "masm", "indexed-log", "skiplist",
)

#: Seeds fanning each method into several comparable cells.  One cell
#: per method makes the grid's wall clock the slowest method's wall
#: clock (sorted-column's shift-heavy inserts dominate) and ``jobs=N``
#: cannot scale past Amdahl; four right-sized cells per method keep
#: every worker busy until the grid drains.
SWEEP_SEEDS = (7, 11, 13, 17)


def bench_sweep(records: int, operations: int, jobs: int) -> Dict[str, object]:
    """Wall time of a method grid: serial vs a jobs sweep (no cache).

    Every parallel measurement uses the persistent-pool session pattern
    the engine is built for — the pool is spawned and warmed *before*
    the timed window, because a sweep session pays startup once, not
    once per grid.  Results are asserted byte-equal to the serial run.
    The entry records ``cpus`` (the cores actually usable by this
    process) so the speedup is interpretable: on a single-core
    container the theoretical ceiling of ``parallel_speedup`` is 1.0
    and the number measures pure scheduler overhead, while on a
    multi-core box it measures real fan-out.
    """
    from dataclasses import replace as spec_replace

    from repro.exec import SweepCell, SweepEngine
    from repro.workloads.spec import WorkloadSpec

    spec = WorkloadSpec(
        point_queries=0.4,
        inserts=0.3,
        updates=0.2,
        deletes=0.1,
        operations=max(1, operations // len(SWEEP_SEEDS)),
        initial_records=records,
    )
    cells = [
        SweepCell.make(
            name,
            spec_replace(spec, seed=seed),
            label=f"{name}/s{seed}",
            block_bytes=BLOCK_BYTES,
        )
        for name in SWEEP_METHODS
        for seed in SWEEP_SEEDS
    ]
    # Untimed warmup pass: forked workers inherit the parent's warm
    # interpreter state (imported method modules, built registries), so
    # without this the serial baseline alone would pay first-run costs
    # and the "speedup" would flatter the pool.
    SweepEngine(jobs=1).run(cells)
    start = time.perf_counter()
    serial = SweepEngine(jobs=1).run(cells)
    serial_seconds = time.perf_counter() - start

    jobs_sweep: Dict[str, Dict[str, float]] = {}
    parallel_seconds = serial_seconds
    for workers in sorted({1, 2, jobs}):
        with SweepEngine(jobs=workers) as engine:
            engine.warm()
            start = time.perf_counter()
            outcome = engine.run(cells)
            seconds = time.perf_counter() - start
        assert [str(r) for r in serial.results] == [
            str(r) for r in outcome.results
        ], f"jobs={workers} results diverged from serial"
        jobs_sweep[str(workers)] = {
            "seconds": seconds,
            "speedup": serial_seconds / seconds,
        }
        if workers == jobs:
            parallel_seconds = seconds
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-linux fallback
        cpus = os.cpu_count() or 1
    return {
        "cells": len(cells),
        "jobs": jobs,
        "cpus": cpus,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "parallel_speedup": serial_seconds / parallel_seconds,
        "jobs_sweep": jobs_sweep,
    }


def merge_trajectory(path: str, entry: Dict[str, object]) -> Dict[str, object]:
    """Fold ``entry`` into the trajectory file at ``path``.

    The file holds ``{"entries": [...]}`` — one entry per recorded run,
    oldest first.  A pre-trajectory single-report file (how
    ``BENCH_hotpath.json`` looked before the batched pipeline landed) is
    converted into the first entry.  Re-running with the same label
    replaces that label's entry instead of appending a duplicate.
    """
    import os

    data: Dict[str, object] = {"entries": []}
    if os.path.exists(path):
        try:
            with open(path) as handle:
                existing = json.load(handle)
        except ValueError:
            existing = None
        if isinstance(existing, dict) and isinstance(existing.get("entries"), list):
            data = existing
        elif isinstance(existing, dict) and "device" in existing:
            legacy = dict(existing)
            legacy.setdefault("label", "pre-batch")
            data = {"entries": [legacy]}
    entries = [
        e for e in data["entries"] if e.get("label") != entry["label"]
    ]
    entries.append(entry)
    data["entries"] = entries
    return data


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny run for CI: verifies the tool end to end in seconds",
    )
    parser.add_argument("--ops", type=int, default=400_000,
                        help="device ops per trial")
    parser.add_argument("--trials", type=int, default=5,
                        help="interleaved trials (best-of)")
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker count for the sweep comparison")
    parser.add_argument("--label", default="current",
                        help="trajectory entry label (one entry per PR)")
    parser.add_argument("--output", default=None,
                        help="append this run to the trajectory JSON file")
    args = parser.parse_args(argv)

    if args.smoke:
        args.ops = min(args.ops, 20_000)
        args.trials = min(args.trials, 2)
        sweep_records, sweep_operations = 400, 200
    else:
        sweep_records, sweep_operations = 8000, 4000

    device = bench_device(args.ops, args.trials)
    sweep = bench_sweep(sweep_records, sweep_operations, args.jobs)
    spans = bench_spans(args.ops, args.trials, sweep_records, sweep_operations)
    live = bench_live(args.ops, args.trials, sweep_records, sweep_operations)
    workload = bench_workload(sweep_records, sweep_operations, args.trials)
    entry = {
        "label": args.label,
        "smoke": args.smoke,
        "ops_per_trial": args.ops,
        "trials": args.trials,
        "device": device,
        "sweep": sweep,
        "spans": spans,
        "live": live,
        "workload": workload,
    }

    print(f"device read : {device['read_ops_per_sec']:>12,.0f} ops/sec "
          f"(legacy {device['legacy_read_ops_per_sec']:>12,.0f}, "
          f"{device['read_speedup']:.2f}x)")
    print(f"device write: {device['write_ops_per_sec']:>12,.0f} ops/sec "
          f"(legacy {device['legacy_write_ops_per_sec']:>12,.0f}, "
          f"{device['write_speedup']:.2f}x)")
    print(f"read_many   : {device['read_many_ops_per_sec']:>12,.0f} ops/sec "
          f"({device['read_batch_speedup']:.2f}x per-op)")
    print(f"write_many  : {device['write_many_ops_per_sec']:>12,.0f} ops/sec "
          f"({device['write_batch_speedup']:.2f}x per-op)")
    jobs_sweep = ", ".join(
        f"jobs={workers} {stats['seconds']:.2f}s ({stats['speedup']:.2f}x)"
        for workers, stats in sorted(
            sweep["jobs_sweep"].items(), key=lambda kv: int(kv[0])
        )
    )
    print(f"sweep {sweep['cells']} cells on {sweep['cpus']} cpu(s): "
          f"serial {sweep['serial_seconds']:.2f}s, {jobs_sweep}")
    for mix_name, mix in workload["mixes"].items():
        print(f"workload {mix_name:11s}: per-op {mix['per_op_seconds']:.3f}s, "
              f"batched {mix['batched_seconds']:.3f}s "
              f"({mix['batched_speedup']:.2f}x, identical profile)")
    print(f"spans disabled: {spans['per_site_disabled_ns']:.0f}ns/site x "
          f"{spans['span_sites_per_op']:.2f} sites/op / "
          f"{spans['per_op_ns']:,.0f}ns/op = "
          f"{spans['disabled_overhead_fraction']:.3%} of the hot loop "
          f"(budget {SPAN_DISABLED_BUDGET:.0%}); "
          f"enabled slowdown {spans['enabled_slowdown']:.2f}x")
    print(f"live disabled : {live['per_site_disabled_ns']:.0f}ns/site x "
          f"{live['live_sites_per_op']:.2f} sites/op / "
          f"{live['per_op_ns']:,.0f}ns/op = "
          f"{live['disabled_overhead_fraction']:.3%} of the hot loop "
          f"(budget {LIVE_DISABLED_BUDGET:.0%}); "
          f"enabled slowdown {live['enabled_slowdown']:.2f}x")
    if not args.smoke:
        # Smoke runs are too short for stable timing; the committed
        # BENCH_hotpath.json comes from a full run, where this holds.
        assert spans["within_budget"], (
            f"disabled span path costs "
            f"{spans['disabled_overhead_fraction']:.3%} of the hot loop, "
            f"budget is {SPAN_DISABLED_BUDGET:.0%}"
        )
        assert live["within_budget"], (
            f"disabled live path costs "
            f"{live['disabled_overhead_fraction']:.3%} of the hot loop, "
            f"budget is {LIVE_DISABLED_BUDGET:.0%}"
        )

    if args.output:
        trajectory = merge_trajectory(args.output, entry)
        with open(args.output, "w") as handle:
            json.dump(trajectory, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(
            f"wrote {args.output} "
            f"({len(trajectory['entries'])} trajectory entries)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
