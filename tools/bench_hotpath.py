"""Hot-path microbenchmark: simulator ops/sec, current vs pre-optimization.

Measures the two operations every experiment in this repository spends
its time on — ``SimulatedDevice.read`` and ``SimulatedDevice.write`` —
and reports ops/sec for the current implementation next to a *faithful
replica of the pre-optimization device* compiled into this file (same
dataclass counters, per-block counters, attribute-chased cost model and
``Optional``-based sequential tracking the device shipped with before
the slimming).  Both variants run in the same process, interleaved
best-of-``--trials``, so machine noise hits them equally and the
speedup column is meaningful on a busy box.

Also times a small sweep grid through :class:`repro.exec.SweepEngine`
at ``jobs=1`` vs ``jobs=4`` to record the parallel fan-out win, and the
span system's overhead (``repro.obs.spans``): the disabled ``@spanned``
path must stay under :data:`SPAN_DISABLED_BUDGET` (2%) of a
representative workload's per-op cost, and the enabled slowdown is
recorded alongside.

Usage::

    PYTHONPATH=src python tools/bench_hotpath.py             # full run
    PYTHONPATH=src python tools/bench_hotpath.py --smoke     # CI seconds
    PYTHONPATH=src python tools/bench_hotpath.py --output BENCH_hotpath.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import dataclass, replace
from typing import Dict, Optional

from repro.storage.device import CostModel, SimulatedDevice


# ----------------------------------------------------------------------
# Faithful replica of the pre-optimization hot path (the baseline).
# Kept verbatim-equivalent so the reported speedup measures the actual
# code change, not a strawman.
# ----------------------------------------------------------------------
@dataclass
class _LegacyBlock:
    block_id: int
    payload: object = None
    used_bytes: int = 0
    kind: str = "data"
    writes: int = 0
    reads: int = 0


@dataclass
class _LegacyCounters:
    reads: int = 0
    writes: int = 0
    read_bytes: int = 0
    write_bytes: int = 0
    allocations: int = 0
    frees: int = 0
    simulated_time: float = 0.0

    def copy(self) -> "_LegacyCounters":
        return replace(self)


class _LegacyTracer:
    enabled = False


class _LegacyDevice:
    """The device's read/write path as it was before the optimization."""

    def __init__(self, block_bytes: int, cost_model: Optional[CostModel] = None):
        self.block_bytes = block_bytes
        self.cost_model = cost_model or CostModel.flash()
        self.name = "legacy"
        self.counters = _LegacyCounters()
        self.tracer = _LegacyTracer()
        self._blocks: Dict[int, _LegacyBlock] = {}
        self._next_id = 0
        self._last_read_id: Optional[int] = None
        self._last_write_id: Optional[int] = None

    def allocate(self, kind: str = "data") -> int:
        block_id = self._next_id
        self._next_id += 1
        self._blocks[block_id] = _LegacyBlock(block_id=block_id, kind=kind)
        self.counters.allocations += 1
        return block_id

    def read(self, block_id: int) -> object:
        block = self._blocks.get(block_id)
        if block is None:
            raise KeyError(f"read of unallocated block {block_id}")
        sequential = (
            self._last_read_id is not None and block_id == self._last_read_id + 1
        )
        self._last_read_id = block_id
        block.reads += 1
        self.counters.reads += 1
        self.counters.read_bytes += self.block_bytes
        cost = (
            self.cost_model.sequential_read
            if sequential
            else self.cost_model.random_read
        )
        self.counters.simulated_time += cost
        if self.tracer.enabled:  # pragma: no cover - replica keeps the branch
            pass
        return block.payload

    def write(self, block_id: int, payload: object, used_bytes: int = 0) -> None:
        block = self._blocks.get(block_id)
        if block is None:
            raise KeyError(f"write of unallocated block {block_id}")
        if used_bytes < 0 or used_bytes > self.block_bytes:
            raise ValueError(
                f"used_bytes {used_bytes} outside block capacity {self.block_bytes}"
            )
        sequential = (
            self._last_write_id is not None and block_id == self._last_write_id + 1
        )
        self._last_write_id = block_id
        block.payload = payload
        block.used_bytes = used_bytes
        block.writes += 1
        self.counters.writes += 1
        self.counters.write_bytes += self.block_bytes
        cost = (
            self.cost_model.sequential_write
            if sequential
            else self.cost_model.random_write
        )
        self.counters.simulated_time += cost
        if self.tracer.enabled:  # pragma: no cover - replica keeps the branch
            pass
        return None


# ----------------------------------------------------------------------
# Measurement
# ----------------------------------------------------------------------
BLOCK_BYTES = 256
N_BLOCKS = 64


def _prepared(factory):
    device = factory(BLOCK_BYTES)
    for _ in range(N_BLOCKS):
        device.allocate()
    return device


def _read_loop(device, ops: int) -> float:
    """ops/sec over a mixed sequential/random read pattern."""
    read = device.read
    ids = [(7 * i) % N_BLOCKS for i in range(ops)]
    start = time.perf_counter()
    for block_id in ids:
        read(block_id)
    elapsed = time.perf_counter() - start
    return ops / elapsed


def _write_loop(device, ops: int) -> float:
    """ops/sec over writes with varying occupancy (worst case for the
    skip-if-unchanged used_bytes fast path)."""
    write = device.write
    block_bytes = BLOCK_BYTES
    ids = [((7 * i) % N_BLOCKS, (i * 13) % block_bytes) for i in range(ops)]
    start = time.perf_counter()
    for block_id, used in ids:
        write(block_id, None, used)
    elapsed = time.perf_counter() - start
    return ops / elapsed


def _best_of(loop, factory, ops: int, trials: int) -> float:
    return max(loop(_prepared(factory), ops) for _ in range(trials))


def bench_device(ops: int, trials: int) -> Dict[str, float]:
    """Interleaved current-vs-legacy ops/sec for read and write."""
    results = {
        "read_ops_per_sec": 0.0,
        "write_ops_per_sec": 0.0,
        "legacy_read_ops_per_sec": 0.0,
        "legacy_write_ops_per_sec": 0.0,
    }
    # Interleave trials so background noise lands on both variants.
    for _ in range(trials):
        results["legacy_read_ops_per_sec"] = max(
            results["legacy_read_ops_per_sec"],
            _best_of(_read_loop, _LegacyDevice, ops, 1),
        )
        results["read_ops_per_sec"] = max(
            results["read_ops_per_sec"],
            _best_of(_read_loop, SimulatedDevice, ops, 1),
        )
        results["legacy_write_ops_per_sec"] = max(
            results["legacy_write_ops_per_sec"],
            _best_of(_write_loop, _LegacyDevice, ops, 1),
        )
        results["write_ops_per_sec"] = max(
            results["write_ops_per_sec"],
            _best_of(_write_loop, SimulatedDevice, ops, 1),
        )
    results["read_speedup"] = (
        results["read_ops_per_sec"] / results["legacy_read_ops_per_sec"]
    )
    results["write_speedup"] = (
        results["write_ops_per_sec"] / results["legacy_write_ops_per_sec"]
    )
    return results


#: Hot-loop budget for the *disabled* span path (ISSUE 5 satellite):
#: all `@spanned` sites together may add at most this fraction to a
#: representative workload's per-op cost when span collection is off.
SPAN_DISABLED_BUDGET = 0.02


def bench_spans(ops: int, trials: int, records: int, operations: int) -> Dict[str, float]:
    """Span-system overhead, disabled vs enabled.

    The disabled path is measured analytically — per-site cost of a
    ``@spanned`` no-op times the measured span sites per workload op,
    divided by the measured per-op time — because the per-site delta
    (~100ns) drowns in run-to-run noise when measured end to end, while
    each factor on its own is stable.  The enabled path is a plain
    wall-clock ratio.
    """
    from repro.core.registry import create_method
    from repro.obs.spans import span_collection, span_entries, spanned
    from repro.workloads.runner import run_workload
    from repro.workloads.spec import WorkloadSpec

    def plain(x):
        return x

    @spanned("bench.site")
    def decorated(x):
        return x

    def best_per_call(func) -> float:
        best = float("inf")
        for _ in range(trials):
            start = time.perf_counter()
            for i in range(ops):
                func(i)
            best = min(best, time.perf_counter() - start)
        return best / ops

    plain_s = best_per_call(plain)
    disabled_s = best_per_call(decorated)
    per_site_disabled_ns = max(0.0, disabled_s - plain_s) * 1e9

    spec = WorkloadSpec(
        point_queries=0.4,
        range_queries=0.1,
        inserts=0.3,
        updates=0.15,
        deletes=0.05,
        operations=operations,
        initial_records=records,
    )

    def run(collect: bool) -> float:
        best = float("inf")
        for _ in range(max(1, trials - 1)):
            method = create_method("btree", device=SimulatedDevice(block_bytes=BLOCK_BYTES))
            start = time.perf_counter()
            if collect:
                with span_collection():
                    run_workload(method, spec)
            else:
                run_workload(method, spec)
            best = min(best, time.perf_counter() - start)
        return best

    disabled_run_s = run(collect=False)
    enabled_run_s = run(collect=True)
    per_op_ns = disabled_run_s / operations * 1e9

    method = create_method("btree", device=SimulatedDevice(block_bytes=BLOCK_BYTES))
    with span_collection():
        entries_before = span_entries()
        run_workload(method, spec)
        sites_per_op = (span_entries() - entries_before) / operations

    disabled_fraction = (
        per_site_disabled_ns * sites_per_op / per_op_ns if per_op_ns else 0.0
    )
    return {
        "per_site_disabled_ns": per_site_disabled_ns,
        "span_sites_per_op": sites_per_op,
        "per_op_ns": per_op_ns,
        "disabled_overhead_fraction": disabled_fraction,
        "disabled_budget": SPAN_DISABLED_BUDGET,
        "within_budget": disabled_fraction < SPAN_DISABLED_BUDGET,
        "enabled_slowdown": enabled_run_s / disabled_run_s if disabled_run_s else 0.0,
    }


SWEEP_METHODS = (
    "btree", "lsm", "hash-index", "sorted-column",
    "zonemap", "masm", "indexed-log", "skiplist",
)


def bench_sweep(records: int, operations: int, jobs: int) -> Dict[str, float]:
    """Wall time of a small method grid, serial vs parallel (no cache)."""
    from repro.exec import SweepCell, SweepEngine
    from repro.workloads.spec import WorkloadSpec

    spec = WorkloadSpec(
        point_queries=0.4,
        inserts=0.3,
        updates=0.2,
        deletes=0.1,
        operations=operations,
        initial_records=records,
    )
    cells = [
        SweepCell.make(name, spec, block_bytes=BLOCK_BYTES)
        for name in SWEEP_METHODS
    ]
    start = time.perf_counter()
    serial = SweepEngine(jobs=1).run(cells)
    serial_seconds = time.perf_counter() - start
    start = time.perf_counter()
    parallel = SweepEngine(jobs=jobs).run(cells)
    parallel_seconds = time.perf_counter() - start
    assert [str(r) for r in serial.results] == [str(r) for r in parallel.results]
    return {
        "cells": len(cells),
        "jobs": jobs,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "parallel_speedup": serial_seconds / parallel_seconds,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny run for CI: verifies the tool end to end in seconds",
    )
    parser.add_argument("--ops", type=int, default=400_000,
                        help="device ops per trial")
    parser.add_argument("--trials", type=int, default=5,
                        help="interleaved trials (best-of)")
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker count for the sweep comparison")
    parser.add_argument("--output", default=None,
                        help="write the results as JSON to this file")
    args = parser.parse_args(argv)

    if args.smoke:
        args.ops = min(args.ops, 20_000)
        args.trials = min(args.trials, 2)
        sweep_records, sweep_operations = 400, 200
    else:
        sweep_records, sweep_operations = 8000, 4000

    device = bench_device(args.ops, args.trials)
    sweep = bench_sweep(sweep_records, sweep_operations, args.jobs)
    spans = bench_spans(args.ops, args.trials, sweep_records, sweep_operations)
    report = {
        "smoke": args.smoke,
        "ops_per_trial": args.ops,
        "trials": args.trials,
        "device": device,
        "sweep": sweep,
        "spans": spans,
    }

    print(f"device read : {device['read_ops_per_sec']:>12,.0f} ops/sec "
          f"(legacy {device['legacy_read_ops_per_sec']:>12,.0f}, "
          f"{device['read_speedup']:.2f}x)")
    print(f"device write: {device['write_ops_per_sec']:>12,.0f} ops/sec "
          f"(legacy {device['legacy_write_ops_per_sec']:>12,.0f}, "
          f"{device['write_speedup']:.2f}x)")
    print(f"sweep {sweep['cells']} cells: serial {sweep['serial_seconds']:.2f}s, "
          f"jobs={sweep['jobs']} {sweep['parallel_seconds']:.2f}s "
          f"({sweep['parallel_speedup']:.2f}x)")
    print(f"spans disabled: {spans['per_site_disabled_ns']:.0f}ns/site x "
          f"{spans['span_sites_per_op']:.2f} sites/op / "
          f"{spans['per_op_ns']:,.0f}ns/op = "
          f"{spans['disabled_overhead_fraction']:.3%} of the hot loop "
          f"(budget {SPAN_DISABLED_BUDGET:.0%}); "
          f"enabled slowdown {spans['enabled_slowdown']:.2f}x")
    if not args.smoke:
        # Smoke runs are too short for stable timing; the committed
        # BENCH_hotpath.json comes from a full run, where this holds.
        assert spans["within_budget"], (
            f"disabled span path costs "
            f"{spans['disabled_overhead_fraction']:.3%} of the hot loop, "
            f"budget is {SPAN_DISABLED_BUDGET:.0%}"
        )

    if args.output:
        with open(args.output, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
